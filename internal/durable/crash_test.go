package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crashScript is the scripted commit sequence the matrix sweeps: two
// generations of one object, like a run checkpointing twice. It stops
// at the first error (the process died).
func crashScript(fsys FS, dir string) error {
	s, err := Open(fsys, dir, nil)
	if err != nil {
		return err
	}
	if _, err := s.Commit("job", func(w io.Writer) error {
		_, err := w.Write([]byte("generation-one"))
		return err
	}); err != nil {
		return err
	}
	_, err = s.Commit("job", func(w io.Writer) error {
		_, err := w.Write([]byte("generation-two"))
		return err
	})
	return err
}

// TestCrashAtEveryWritePoint is the acceptance matrix: for every
// mutating-op index in the commit sequence, crash there, then recover
// with a clean filesystem and require that (a) the load lands on a
// fully-valid generation or reports a clean not-exist — never a torn
// or hybrid payload, and (b) durability is monotone in the crash
// point: once some crash index yields generation two, every later
// crash index does too.
func TestCrashAtEveryWritePoint(t *testing.T) {
	probe := NewFaultFS(OS, Plan{})
	if err := crashScript(probe, t.TempDir()); err != nil {
		t.Fatalf("clean script run: %v", err)
	}
	total := probe.Ops()
	if total < 10 {
		t.Fatalf("script issued only %d mutating ops", total)
	}

	for _, torn := range []int{0, 3} {
		level := 0 // 0 = nothing, 1 = gen one, 2 = gen two
		for op := 1; op <= total; op++ {
			dir := t.TempDir()
			ffs := NewFaultFS(OS, Plan{CrashAtOp: op, TornBytes: torn})
			err := crashScript(ffs, dir)
			if op <= total && !ffs.Crashed() {
				// Later ops may legitimately not be reached when the
				// crash consumed earlier ones; but op <= total means
				// the crash must have fired.
				t.Fatalf("op %d torn %d: crash never fired (err %v)", op, torn, err)
			}

			// Reboot: clean FS, fresh store.
			s, err := Open(OS, dir, nil)
			if err != nil {
				t.Fatalf("op %d torn %d: reopen: %v", op, torn, err)
			}
			var got []byte
			_, err = s.Load("job", func(r io.Reader) error {
				var err error
				got, err = io.ReadAll(r)
				return err
			})
			now := 0
			switch {
			case err == nil && string(got) == "generation-two":
				now = 2
			case err == nil && string(got) == "generation-one":
				now = 1
			case errors.Is(err, ErrNotExist) && op > 1:
				// Only possible while generation one is still unpublished.
				now = 0
			case errors.Is(err, ErrNotExist) && op == 1:
				now = 0 // crash on the store's own mkdir/cleanup
			default:
				t.Fatalf("op %d torn %d: recovered %q err %v — not a committed generation", op, torn, got, err)
			}
			if now < level {
				t.Fatalf("op %d torn %d: durability regressed from %d to %d", op, torn, level, now)
			}
			level = now

			// Crash debris must not survive the reopen.
			files, _ := os.ReadDir(dir)
			for _, f := range files {
				if strings.HasPrefix(f.Name(), tmpPrefix) {
					t.Fatalf("op %d torn %d: temp debris %s survived reopen", op, torn, f.Name())
				}
			}
		}
		if level != 2 {
			t.Fatalf("torn %d: crash after the last op still lost generation two", torn)
		}
	}
}

// TestCommitSurvivesTransientFailures injects a single non-crash
// failure (ENOSPC-style) at every op of a second commit: the commit
// must report the error (or succeed, when the op is past the publish
// point) and the store must still load a fully-valid generation.
func TestCommitSurvivesTransientFailures(t *testing.T) {
	probe := NewFaultFS(OS, Plan{})
	if err := crashScript(probe, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()

	for op := 1; op <= total; op++ {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, Plan{FailAtOp: op, FailErr: ErrNoSpace})
		scriptErr := crashScript(ffs, dir)

		s, err := Open(OS, dir, nil)
		if err != nil {
			t.Fatalf("op %d: reopen: %v", op, err)
		}
		var got []byte
		_, err = s.Load("job", func(r io.Reader) error {
			var e error
			got, e = io.ReadAll(r)
			return e
		})
		switch {
		case err == nil && (string(got) == "generation-one" || string(got) == "generation-two"):
		case errors.Is(err, ErrNotExist) && scriptErr != nil:
			// The failure landed before the first publish.
		default:
			t.Fatalf("op %d: recovered %q err %v (script err %v)", op, got, err, scriptErr)
		}
		if scriptErr != nil && !errors.Is(scriptErr, ErrNoSpace) {
			t.Fatalf("op %d: script error %v does not surface the injected cause", op, scriptErr)
		}
	}
}

// TestCrashRecoveryPrefersNewestValid pins the core recovery rule
// with a handmade layout: valid g1, torn g2 (a frame missing its
// tail), valid g3 from a different object. Load must serve g1 and
// quarantine g2.
func TestCrashRecoveryPrefersNewestValid(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(OS, dir, nil)
	commitBytes(t, s, "job", []byte("v1"))
	commitBytes(t, s, "job", []byte("v2"))

	// Tear generation 2: chop the footer (simulates rename of a file
	// whose tail never hit the disk).
	f := filepath.Join(dir, genFile("job", 2))
	raw, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f, raw[:len(raw)-footerLen], 0o644); err != nil {
		t.Fatal(err)
	}

	got, gen, err := loadBytes(s, "job")
	if err != nil || gen != 1 || string(got) != "v1" {
		t.Fatalf("load after torn g2: %q g%d %v", got, gen, err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, genFile("job", 2))); err != nil {
		t.Fatalf("torn generation not quarantined: %v", err)
	}
}
