package durable

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Injected fault sentinels. ErrCrashed marks every operation after the
// injected crash point — the moment the simulated machine died;
// ErrNoSpace and ErrInjectedIO are the transient-failure flavours
// (ENOSPC, failed fsync/rename) that a commit must surface as an error
// while leaving the store recoverable.
var (
	ErrCrashed    = errors.New("durable: injected crash (process died here)")
	ErrNoSpace    = errors.New("durable: injected ENOSPC")
	ErrInjectedIO = errors.New("durable: injected I/O failure")
)

// Plan scripts a FaultFS deterministically — no randomness, so every
// failing run is exactly reproducible, mirroring the hetero chaos
// harness and the resilience Injector.
//
// Mutating operations (Create, Write, Sync, Close of a written file,
// Rename, Remove, MkdirAll, SyncDir) are numbered 1,2,3,… in call
// order, so the zero-value Plan injects nothing. Reads are not
// numbered: crashes happen while writing.
type Plan struct {
	// CrashAtOp kills the filesystem at that mutating-op index: a
	// Write lands only TornBytes of its buffer (a torn write), any
	// other op does not happen at all; every later op fails with
	// ErrCrashed. Zero or negative means never.
	CrashAtOp int
	// TornBytes is how many leading bytes of the crashing Write reach
	// the file (0 = none).
	TornBytes int

	// FailAtOp makes that single mutating op fail with FailErr
	// (default ErrInjectedIO) WITHOUT crashing: the op does not apply,
	// the error returns, and the filesystem keeps working — modelling
	// ENOSPC, a failed fsync, or a failed rename.
	FailAtOp int
	// FailErr is the error FailAtOp returns.
	FailErr error

	// FlipBitPath, when non-empty, flips FlipBitOffset's bit (bit
	// index: byte*8 + bit) in every file whose path contains the
	// substring, as the file is read back — modelling at-rest bit rot
	// without touching the stored bytes.
	FlipBitPath   string
	FlipBitOffset int64
}

// FaultFS wraps an inner FS with the deterministic fault Plan. Safe
// for concurrent use; the op counter is global across files, which is
// what makes "crash at write point N" well-defined for a scripted
// commit sequence.
type FaultFS struct {
	inner FS
	plan  Plan

	mu      sync.Mutex
	ops     int
	crashed bool
}

// NewFaultFS builds a fault-injecting view of inner.
func NewFaultFS(inner FS, plan Plan) *FaultFS {
	if plan.FailErr == nil {
		plan.FailErr = ErrInjectedIO
	}
	return &FaultFS{inner: inner, plan: plan}
}

// Ops reports how many mutating operations have been issued so far.
// Run a script once with a never-crashing plan to learn its op count,
// then sweep CrashAtOp over [1, Ops()] — the crash-at-every-write-point
// matrix.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the injected crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// op gates one mutating operation: it returns (deadErr, failErr,
// torn). deadErr non-nil means the op must not apply (crashed before
// or at this op, with torn>=0 telling a Write how many bytes still
// land); failErr non-nil means the op fails transiently.
func (f *FaultFS) op() (dead error, fail error, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, nil, 0
	}
	f.ops++
	idx := f.ops
	if f.plan.CrashAtOp > 0 && idx == f.plan.CrashAtOp {
		f.crashed = true
		return ErrCrashed, nil, f.plan.TornBytes
	}
	if f.plan.FailAtOp > 0 && idx == f.plan.FailAtOp {
		return nil, f.plan.FailErr, 0
	}
	return nil, nil, 0
}

// Create counts as one mutating op.
func (f *FaultFS) Create(name string) (File, error) {
	dead, fail, _ := f.op()
	if dead != nil {
		return nil, dead
	}
	if fail != nil {
		return nil, fmt.Errorf("create %s: %w", name, fail)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name, writable: true}, nil
}

// Open is not a mutating op; reads only rot bits per the plan.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, f: file, name: name}
	if f.plan.FlipBitPath != "" && strings.Contains(name, f.plan.FlipBitPath) {
		ff.flipAt = f.plan.FlipBitOffset
		ff.flip = true
	}
	return ff, nil
}

func (f *FaultFS) Rename(o, n string) error {
	dead, fail, _ := f.op()
	if dead != nil {
		return dead
	}
	if fail != nil {
		return fmt.Errorf("rename %s: %w", o, fail)
	}
	return f.inner.Rename(o, n)
}

func (f *FaultFS) Remove(name string) error {
	dead, fail, _ := f.op()
	if dead != nil {
		return dead
	}
	if fail != nil {
		return fmt.Errorf("remove %s: %w", name, fail)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(dir string) error {
	dead, fail, _ := f.op()
	if dead != nil {
		return dead
	}
	if fail != nil {
		return fmt.Errorf("mkdir %s: %w", dir, fail)
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) SyncDir(dir string) error {
	dead, fail, _ := f.op()
	if dead != nil {
		return dead
	}
	if fail != nil {
		return fmt.Errorf("syncdir %s: %w", dir, fail)
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes a file's Write/Sync/Close through the op counter
// and applies read-time bit rot.
type faultFile struct {
	fs       *FaultFS
	f        File
	name     string
	writable bool

	flip   bool
	flipAt int64
	rd     int64 // read cursor, for locating flipAt
}

func (ff *faultFile) Write(p []byte) (int, error) {
	dead, fail, torn := ff.fs.op()
	if dead != nil {
		// The torn prefix is what made it to the platters before the
		// crash; it must be durable so recovery sees the half-write.
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, _ := ff.f.Write(p[:torn])
			_ = ff.f.Sync()
			return n, dead
		}
		return 0, dead
	}
	if fail != nil {
		return 0, fmt.Errorf("write %s: %w", ff.name, fail)
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.f.Read(p)
	if ff.flip && n > 0 {
		lo, hi := ff.rd, ff.rd+int64(n)
		if byteAt := ff.flipAt / 8; byteAt >= lo && byteAt < hi {
			p[byteAt-lo] ^= 1 << (ff.flipAt % 8)
		}
		ff.rd = hi
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	if !ff.writable {
		return ff.f.Sync()
	}
	dead, fail, _ := ff.fs.op()
	if dead != nil {
		return dead
	}
	if fail != nil {
		return fmt.Errorf("sync %s: %w", ff.name, fail)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if !ff.writable {
		return ff.f.Close()
	}
	dead, fail, _ := ff.fs.op()
	if dead != nil {
		// A crashed process's descriptors are gone either way; close
		// the real file so temp dirs can be cleaned up.
		_ = ff.f.Close()
		return dead
	}
	if fail != nil {
		_ = ff.f.Close()
		return fmt.Errorf("close %s: %w", ff.name, fail)
	}
	return ff.f.Close()
}
