// Package durable is the crash-consistent checkpoint storage layer:
// everything the stack persists across a process death flows through
// it, so torn writes, truncation and bit rot are detected instead of
// silently resumed from.
//
// Three pieces compose (see docs/RESILIENCE.md §6):
//
//   - Framing (frame.go). A self-describing stream format — magic,
//     format version, length-prefixed chunks each guarded by CRC32C,
//     and a sealed footer carrying chunk count, payload length and a
//     whole-stream CRC. Any truncation, torn tail or flipped bit fails
//     verification; a frame that verifies is byte-for-byte the frame
//     that was sealed.
//   - The generation store (store.go). Commit writes a temp file,
//     fsyncs it, atomically renames it to a generation-numbered name,
//     and fsyncs the directory; a manifest records the intended head.
//     Recovery never trusts a name: it scans generations newest-first
//     and fully verifies each until one passes, so a crash at ANY
//     point of the commit sequence lands the reader on the newest
//     fully-valid generation — never a half-written one.
//   - Fault injection (faultfs.go). All I/O goes through the FS
//     interface (fs.go); FaultFS deterministically injects crashes at
//     a chosen operation index (with torn partial writes), ENOSPC,
//     fsync/rename failures and read-time bit rot, so the crash- and
//     corruption-matrix tests can prove recovery at every injection
//     point, mirroring the hetero chaos harness.
//
// Corruption errors wrap ErrCorrupt, which package output aliases as
// ErrCheckpointCorrupt — callers classify failures with a single
// errors.Is across the whole stack.
package durable

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the corruption sentinel: the bytes cannot be what was
// sealed — truncated file, torn write, flipped bit, or garbage.
// Retrying the same bytes can never succeed. Package output exposes
// this same value as ErrCheckpointCorrupt, so
// errors.Is(err, output.ErrCheckpointCorrupt) classifies durable-layer
// failures too.
var ErrCorrupt = errors.New("checkpoint corrupt")

// ErrNotExist reports that a store holds no generation at all for the
// requested name (as opposed to holding only invalid ones, which is
// corruption).
var ErrNotExist = errors.New("durable: no such object")

// Error wraps a corruption failure with the operation that detected
// it. Unwrap exposes both ErrCorrupt and the underlying cause to
// errors.Is/As.
type Error struct {
	Op  string // what was being verified, e.g. "durable: chunk crc"
	Err error  // underlying cause; may be nil
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%s: %v: %v", e.Op, ErrCorrupt, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Op, ErrCorrupt)
}

// Unwrap exposes the sentinel and the cause.
func (e *Error) Unwrap() []error {
	if e.Err == nil {
		return []error{ErrCorrupt}
	}
	return []error{ErrCorrupt, e.Err}
}

// Corrupt wraps cause as a corruption failure detected by op, for
// callers outside this package whose payload parsing fails inside an
// otherwise-verified frame.
func Corrupt(op string, cause error) error { return corrupt(op, cause) }

// corrupt builds an *Error for op, optionally with a cause.
func corrupt(op string, cause error) error { return &Error{Op: op, Err: cause} }

// corruptf builds an *Error whose cause is a formatted message.
func corruptf(op, format string, args ...any) error {
	return &Error{Op: op, Err: fmt.Errorf(format, args...)}
}
