package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle surface the commit protocol needs: sequential
// read/write plus Sync, so a fault-injecting implementation can tear
// writes and fail fsyncs deterministically.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// FS abstracts every filesystem operation the store performs. The
// production implementation is OS; tests swap in a FaultFS to inject
// crashes, short writes, ENOSPC and read-time bit rot at exact
// operation indices. Paths are ordinary slash paths rooted wherever
// the caller says.
type FS interface {
	// Create truncates-or-creates name for writing.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames within it
	// durable. On filesystems where directories cannot be fsynced the
	// implementation may no-op, weakening crash consistency to what
	// the platform offers.
	SyncDir(dir string) error
}

// OS is the production FS backed by package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Rename(o, n string) error         { return os.Rename(o, n) }
func (osFS) Remove(name string) error         { return os.Remove(name) }
func (osFS) MkdirAll(dir string) error        { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Directory fsync makes the just-renamed entry durable; platforms
	// that reject fsync on directories degrade to rename-only ordering.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
