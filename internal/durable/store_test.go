package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"rhsc/internal/metrics"
)

// commitBytes commits b as one generation of name.
func commitBytes(t *testing.T, s *Store, name string, b []byte) uint64 {
	t.Helper()
	gen, err := s.Commit(name, func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	})
	if err != nil {
		t.Fatalf("commit %s: %v", name, err)
	}
	return gen
}

// loadBytes loads name's newest valid generation.
func loadBytes(s *Store, name string) ([]byte, uint64, error) {
	var got []byte
	gen, err := s.Load(name, func(r io.Reader) error {
		var err error
		got, err = io.ReadAll(r)
		return err
	})
	return got, gen, err
}

func TestStoreCommitLoadRoundTrip(t *testing.T) {
	s, err := Open(OS, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := commitBytes(t, s, "job", []byte("alpha")); g != 1 {
		t.Fatalf("first commit gen %d, want 1", g)
	}
	if g := commitBytes(t, s, "job", []byte("beta")); g != 2 {
		t.Fatalf("second commit gen %d, want 2", g)
	}
	got, gen, err := loadBytes(s, "job")
	if err != nil || gen != 2 || string(got) != "beta" {
		t.Fatalf("load: %q g%d %v", got, gen, err)
	}
	if c := s.Counters().Snapshot(); c.Commits != 2 || c.Recoveries != 0 {
		t.Fatalf("counters %+v", c)
	}
}

func TestStorePrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(OS, dir, nil)
	for i := 0; i < 5; i++ {
		commitBytes(t, s, "job", []byte{byte(i)})
	}
	gens, err := s.generations("job")
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != KeepGenerations || gens[len(gens)-1] != 5 {
		t.Fatalf("after pruning: generations %v", gens)
	}
}

func TestStoreLoadSkipsCorruptNewestAndQuarantines(t *testing.T) {
	dir := t.TempDir()
	var c metrics.DurableCounters
	s, _ := Open(OS, dir, &c)
	commitBytes(t, s, "job", []byte("good-old"))
	commitBytes(t, s, "job", []byte("good-new"))

	// Rot a bit in the newest generation on disk.
	newest := filepath.Join(dir, genFile("job", 2))
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, gen, err := loadBytes(s, "job")
	if err != nil || gen != 1 || string(got) != "good-old" {
		t.Fatalf("recovery load: %q g%d %v", got, gen, err)
	}
	snap := c.Snapshot()
	if snap.Recoveries != 1 || snap.SkippedGenerations != 1 ||
		snap.DetectedCorruptions != 1 || snap.Quarantined != 1 {
		t.Fatalf("counters %+v", snap)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, genFile("job", 2))); err != nil {
		t.Fatalf("corrupt generation not quarantined: %v", err)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("corrupt generation still shadowing the store: %v", err)
	}
}

func TestStoreLoadAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(OS, dir, nil)
	commitBytes(t, s, "job", []byte("data"))
	f := filepath.Join(dir, genFile("job", 1))
	if err := os.WriteFile(f, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBytes(s, "job"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all-corrupt load: %v, want ErrCorrupt", err)
	}
	if _, _, err := loadBytes(s, "missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing load: %v, want ErrNotExist", err)
	}
}

func TestStoreLoadAbortsOnSemanticError(t *testing.T) {
	// A read-callback failure that is NOT corruption must abort rather
	// than silently resurrecting an older generation.
	s, _ := Open(OS, t.TempDir(), nil)
	commitBytes(t, s, "job", []byte("old"))
	commitBytes(t, s, "job", []byte("new"))
	sentinel := errors.New("config mismatch")
	_, err := s.Load("job", func(r io.Reader) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("semantic error not surfaced: %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("semantic error misclassified as corruption: %v", err)
	}
}

func TestStoreNamesRemoveAndManifest(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(OS, dir, nil)
	commitBytes(t, s, "a", []byte("1"))
	commitBytes(t, s, "b", []byte("2"))
	names, err := s.Names()
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v %v", names, err)
	}
	heads := s.readManifest()
	if heads["a"] != 1 || heads["b"] != 1 {
		t.Fatalf("manifest heads %v", heads)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if names, _ = s.Names(); len(names) != 1 || names[0] != "b" {
		t.Fatalf("names after remove %v", names)
	}
	if heads := s.readManifest(); len(heads) != 1 {
		t.Fatalf("manifest after remove %v", heads)
	}
}

func TestStoreOpenSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(OS, dir, nil)
	commitBytes(t, s, "job", []byte("data"))
	debris := filepath.Join(dir, tmpPrefix+"job.g00000002.dur")
	if err := os.WriteFile(debris, []byte("half a commit"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(OS, dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatalf("temp debris survived reopen: %v", err)
	}
}

func TestStoreScrub(t *testing.T) {
	dir := t.TempDir()
	var c metrics.DurableCounters
	s, _ := Open(OS, dir, &c)
	commitBytes(t, s, "good", bytes.Repeat([]byte("x"), 4096))
	commitBytes(t, s, "bad", []byte("will be truncated"))

	// Truncate "bad" g1 behind the store's back.
	f := filepath.Join(dir, genFile("bad", 1))
	raw, _ := os.ReadFile(f)
	os.WriteFile(f, raw[:len(raw)-5], 0o644)

	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 || rep.Bad != 1 {
		t.Fatalf("scrub checked %d bad %d", rep.Checked, rep.Bad)
	}
	for _, r := range rep.Results {
		wantOK := r.File == genFile("good", 1)
		if r.OK != wantOK {
			t.Fatalf("scrub %s ok=%v", r.File, r.OK)
		}
		if wantOK && r.Bytes != 4096 {
			t.Fatalf("scrub verified %d bytes, want 4096", r.Bytes)
		}
	}
	// The manifest still points at bad g1, now invalid: drift.
	if len(rep.ManifestDrift) != 1 || rep.ManifestDrift[0] != "bad" {
		t.Fatalf("manifest drift %v", rep.ManifestDrift)
	}
	if c.Snapshot().ScrubFailures != 1 {
		t.Fatalf("scrub failures %d", c.Snapshot().ScrubFailures)
	}
	// Scrub is read-only: the bad file must still be in place.
	if _, err := os.Stat(f); err != nil {
		t.Fatalf("scrub moved the bad file: %v", err)
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"j000001": true, "sod-amr-123": true, "blast2d": true,
		"": false, "a/b": false, "MANIFEST": false, ".hidden": false,
		"x.g1": false,
	} {
		if ValidName(name) != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, !want, want)
		}
	}
}

func TestStoreBitRotViaFaultFS(t *testing.T) {
	// Read-time bit rot through the fault FS: the stored bytes are
	// pristine, the read path flips one bit, recovery must reject it.
	dir := t.TempDir()
	s, _ := Open(OS, dir, nil)
	commitBytes(t, s, "job", bytes.Repeat([]byte("payload"), 100))

	rot := NewFaultFS(OS, Plan{FlipBitPath: "job.g", FlipBitOffset: 300 * 8})
	var c metrics.DurableCounters
	s2, err := Open(rot, dir, &c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBytes(s2, "job"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rotted load: %v, want ErrCorrupt", err)
	}
	if c.Snapshot().DetectedCorruptions != 1 {
		t.Fatalf("counters %+v", c.Snapshot())
	}
}
