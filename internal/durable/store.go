package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"

	"rhsc/internal/metrics"
)

const (
	tmpPrefix    = ".tmp-"
	genSuffix    = ".dur"
	manifestName = "MANIFEST"
	// QuarantineDir is where corrupt files are moved aside, relative
	// to the store directory.
	QuarantineDir = "corrupt"
	// KeepGenerations is how many committed generations of each name
	// survive pruning. Two, not one: the newest generation is the one
	// a crash may have caught mid-commit, so its predecessor must
	// outlive the commit that supersedes it.
	KeepGenerations = 2
)

// Store is a directory of named, generation-numbered, framed objects
// with a crash-consistent commit protocol. One Store owns one
// directory; methods are not safe for concurrent use (the serving
// layer serialises spool access, the CLI is single-threaded).
//
// On-disk layout:
//
//	<dir>/<name>.g<8-digit gen>.dur   committed generations
//	<dir>/MANIFEST                    framed JSON head pointers
//	<dir>/.tmp-*                      commits in flight (crash debris)
//	<dir>/corrupt/                    quarantined files + .reason notes
//
// Commit: write .tmp, fsync, rename to the generation name, fsync the
// directory, then update MANIFEST the same way. Recovery (Load) never
// trusts the manifest or a filename: it scans generations newest-first
// and fully verifies each frame until one passes, quarantining the
// invalid ones it skipped. A crash at any write point therefore lands
// the next reader on the newest fully-valid generation.
type Store struct {
	fs  FS
	dir string
	c   *metrics.DurableCounters
}

// Open binds a store to dir (created if missing), sweeping any
// crash-orphaned temp files. counters may be nil for a private set.
func Open(fsys FS, dir string, counters *metrics.DurableCounters) (*Store, error) {
	if counters == nil {
		counters = &metrics.DurableCounters{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &Store{fs: fsys, dir: dir, c: counters}
	// Temp files are pre-rename by construction: deleting them can
	// never lose a committed generation.
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if strings.HasPrefix(n, tmpPrefix) {
			_ = fsys.Remove(path.Join(dir, n))
		}
	}
	return s, nil
}

// Counters exposes the store's counter set (shared if Open got one).
func (s *Store) Counters() *metrics.DurableCounters { return s.c }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// genFile formats the on-disk name of one generation.
func genFile(name string, gen uint64) string {
	return fmt.Sprintf("%s.g%08d%s", name, gen, genSuffix)
}

// parseGen splits a directory entry into (object name, generation).
func parseGen(file string) (string, uint64, bool) {
	if !strings.HasSuffix(file, genSuffix) || strings.HasPrefix(file, tmpPrefix) {
		return "", 0, false
	}
	base := strings.TrimSuffix(file, genSuffix)
	i := strings.LastIndex(base, ".g")
	if i <= 0 {
		return "", 0, false
	}
	gen, err := strconv.ParseUint(base[i+2:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return base[:i], gen, true
}

// ValidName reports whether name can be stored: path separators and
// the generation marker are reserved.
func ValidName(name string) bool {
	return name != "" && name != manifestName &&
		!strings.ContainsAny(name, "/\\") && !strings.Contains(name, ".g") &&
		!strings.HasPrefix(name, ".")
}

// generations lists name's committed generations, ascending.
func (s *Store) generations(name string) ([]uint64, error) {
	files, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, f := range files {
		if n, g, ok := parseGen(f); ok && n == name {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// Names lists the distinct object names with at least one committed
// generation.
func (s *Store) Names() ([]string, error) {
	files, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, f := range files {
		if n, _, ok := parseGen(f); ok && !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Commit durably publishes a new generation of name: write the framed
// payload to a temp file, fsync, rename into place, fsync the
// directory, update the manifest, prune stale generations. On any
// error nothing is published — the previous generation remains the
// newest valid one (temp debris is swept by Open). Returns the
// generation number committed.
func (s *Store) Commit(name string, write func(w io.Writer) error) (uint64, error) {
	if !ValidName(name) {
		return 0, fmt.Errorf("durable: unstorable name %q", name)
	}
	gens, err := s.generations(name)
	if err != nil {
		return 0, err
	}
	gen := uint64(1)
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}

	tmp := path.Join(s.dir, tmpPrefix+genFile(name, gen))
	f, err := s.fs.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("durable: commit %s: %w", name, err)
	}
	fw := NewWriter(f)
	err = write(fw)
	if err == nil {
		err = fw.Seal()
	}
	if err == nil {
		err = f.Sync()
		s.c.Fsyncs.Add(1)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fs.Remove(tmp)
		return 0, fmt.Errorf("durable: commit %s: %w", name, err)
	}
	final := path.Join(s.dir, genFile(name, gen))
	if err := s.fs.Rename(tmp, final); err != nil {
		_ = s.fs.Remove(tmp)
		return 0, fmt.Errorf("durable: commit %s: %w", name, err)
	}
	s.c.Renames.Add(1)
	if err := s.fs.SyncDir(s.dir); err != nil {
		return 0, fmt.Errorf("durable: commit %s: %w", name, err)
	}
	s.c.Fsyncs.Add(1)
	s.c.Commits.Add(1)
	s.c.CommitBytes.Add(int64(fw.total))

	// The generation is durable regardless of what happens to the
	// manifest or pruning below: recovery scans, the manifest is a
	// head hint for operators and scrub.
	if err := s.writeManifest(); err != nil {
		return gen, fmt.Errorf("durable: commit %s: manifest: %w", name, err)
	}
	s.prune(name, gen)
	return gen, nil
}

// prune removes generations older than the KeepGenerations newest.
// Best-effort: a failed remove leaves a stale-but-valid file that
// recovery will simply never prefer.
func (s *Store) prune(name string, newest uint64) {
	gens, err := s.generations(name)
	if err != nil {
		return
	}
	for _, g := range gens {
		if g+KeepGenerations <= newest {
			_ = s.fs.Remove(path.Join(s.dir, genFile(name, g)))
		}
	}
}

// manifest is the framed JSON head-pointer record.
type manifest struct {
	// Heads maps object name to the generation most recently committed.
	Heads map[string]uint64 `json:"heads"`
}

// writeManifest publishes the current head set with the same
// tmp/fsync/rename/dirsync sequence as payload commits.
func (s *Store) writeManifest() error {
	names, err := s.Names()
	if err != nil {
		return err
	}
	m := manifest{Heads: map[string]uint64{}}
	for _, n := range names {
		gens, err := s.generations(n)
		if err != nil {
			return err
		}
		m.Heads[n] = gens[len(gens)-1]
	}
	blob, err := json.Marshal(&m)
	if err != nil {
		return err
	}
	tmp := path.Join(s.dir, tmpPrefix+manifestName)
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	fw := NewWriter(f)
	_, err = fw.Write(blob)
	if err == nil {
		err = fw.Seal()
	}
	if err == nil {
		err = f.Sync()
		s.c.Fsyncs.Add(1)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, path.Join(s.dir, manifestName)); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	s.c.Renames.Add(1)
	if err := s.fs.SyncDir(s.dir); err != nil {
		return err
	}
	s.c.Fsyncs.Add(1)
	return nil
}

// readManifest returns the head map, or nil when the manifest is
// missing or (after a crash mid-update) invalid — never an error:
// the manifest is advisory.
func (s *Store) readManifest() map[string]uint64 {
	f, err := s.fs.Open(path.Join(s.dir, manifestName))
	if err != nil {
		return nil
	}
	defer f.Close()
	fr, err := NewReader(f)
	if err != nil {
		return nil
	}
	var m manifest
	if err := json.NewDecoder(fr).Decode(&m); err != nil {
		return nil
	}
	if err := fr.Verify(); err != nil {
		return nil
	}
	return m.Heads
}

// Load opens name's newest fully-valid generation and hands the
// verified payload stream to read. Generations that fail verification
// — or whose read callback reports corruption — are quarantined and
// skipped, falling back to the next older one; any other read error
// aborts (a config mismatch will not be fixed by older data). Returns
// the generation served. ErrNotExist when the store holds none.
func (s *Store) Load(name string, read func(r io.Reader) error) (uint64, error) {
	gens, err := s.generations(name)
	if err != nil {
		return 0, err
	}
	if len(gens) == 0 {
		return 0, fmt.Errorf("durable: load %s: %w", name, ErrNotExist)
	}
	skipped := 0
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		err := s.loadOne(genFile(name, gen), read)
		if err == nil {
			if skipped > 0 {
				s.c.Recoveries.Add(1)
				s.c.SkippedGenerations.Add(int64(skipped))
			}
			return gen, nil
		}
		if !errors.Is(err, ErrCorrupt) {
			return 0, fmt.Errorf("durable: load %s g%d: %w", name, gen, err)
		}
		s.c.DetectedCorruptions.Add(1)
		if firstErr == nil {
			firstErr = err
		}
		_ = s.Quarantine(genFile(name, gen), err.Error())
		skipped++
	}
	return 0, fmt.Errorf("durable: load %s: all %d generation(s) invalid: %w",
		name, skipped, firstErr)
}

// loadOne verifies one generation file end to end while read consumes
// its payload.
func (s *Store) loadOne(file string, read func(r io.Reader) error) error {
	f, err := s.fs.Open(path.Join(s.dir, file))
	if err != nil {
		return corrupt("durable: open generation", err)
	}
	defer f.Close()
	fr, err := NewReader(f)
	if err != nil {
		return err
	}
	if err := read(fr); err != nil {
		return err
	}
	return fr.Verify()
}

// Latest reports name's newest generation number by filename, without
// verifying it (use Load for a verified answer).
func (s *Store) Latest(name string) (uint64, bool) {
	gens, err := s.generations(name)
	if err != nil || len(gens) == 0 {
		return 0, false
	}
	return gens[len(gens)-1], true
}

// Remove deletes every generation of name (spool consumption after a
// successful re-admission) and refreshes the manifest.
func (s *Store) Remove(name string) error {
	gens, err := s.generations(name)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if err := s.fs.Remove(path.Join(s.dir, genFile(name, g))); err != nil {
			return err
		}
	}
	return s.writeManifest()
}

// Quarantine moves file (a name within the store directory) into the
// corrupt/ subdirectory with a .reason note, so operators can inspect
// what recovery refused without the bad bytes shadowing good ones.
func (s *Store) Quarantine(file, reason string) error {
	qdir := path.Join(s.dir, QuarantineDir)
	if err := s.fs.MkdirAll(qdir); err != nil {
		return err
	}
	if err := s.fs.Rename(path.Join(s.dir, file), path.Join(qdir, file)); err != nil {
		return err
	}
	s.c.Quarantined.Add(1)
	// The note is best-effort diagnostics; its loss costs nothing.
	if f, err := s.fs.Create(path.Join(qdir, file+".reason")); err == nil {
		_, _ = f.Write([]byte(reason + "\n"))
		_ = f.Close()
	}
	return nil
}

// QuarantineName moves every generation of name into corrupt/ with the
// given reason — for callers whose payload verified but cannot be used
// (e.g. a spooled job whose spec no longer validates): leaving it in
// place would fail every future recovery sweep the same way.
func (s *Store) QuarantineName(name, reason string) error {
	gens, err := s.generations(name)
	if err != nil {
		return err
	}
	var errs []error
	for _, g := range gens {
		if err := s.Quarantine(genFile(name, g), reason); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ScrubResult is one file's verdict in a scrub pass.
type ScrubResult struct {
	File  string `json:"file"`
	Gen   uint64 `json:"gen,omitempty"`
	Bytes uint64 `json:"bytes,omitempty"` // verified payload bytes
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// ScrubReport summarises a full-store verification pass.
type ScrubReport struct {
	Dir     string `json:"dir"`
	Checked int    `json:"checked"`
	Bad     int    `json:"bad"`
	// ManifestDrift lists names whose manifest head is missing or
	// invalid on disk — expected only in the crash window between a
	// payload rename and the manifest update.
	ManifestDrift []string      `json:"manifest_drift,omitempty"`
	Results       []ScrubResult `json:"results"`
}

// Scrub verifies every committed generation byte for byte (read-only:
// nothing is quarantined or repaired — that is Load's job) and cross-
// checks the manifest heads. A pass that finds at least one bad file
// bumps ScrubFailures.
func (s *Store) Scrub() (*ScrubReport, error) {
	files, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	rep := &ScrubReport{Dir: s.dir}
	valid := map[string]uint64{} // name -> newest verified gen
	for _, file := range files {
		name, gen, ok := parseGen(file)
		if !ok {
			continue
		}
		res := ScrubResult{File: file, Gen: gen}
		var fr *Reader
		err := s.loadOne(file, func(r io.Reader) error {
			fr = r.(*Reader)
			return nil // Verify drains everything
		})
		if err != nil {
			res.Error = err.Error()
		} else {
			res.OK = true
			res.Bytes = fr.PayloadBytes()
			if gen > valid[name] {
				valid[name] = gen
			}
		}
		rep.Checked++
		if !res.OK {
			rep.Bad++
		}
		rep.Results = append(rep.Results, res)
	}
	for name, head := range s.readManifest() {
		if valid[name] < head {
			rep.ManifestDrift = append(rep.ManifestDrift, name)
		}
	}
	sort.Strings(rep.ManifestDrift)
	if rep.Bad > 0 {
		s.c.ScrubFailures.Add(1)
	}
	return rep, nil
}
