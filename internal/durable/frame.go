package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The frame layout (all integers little-endian):
//
//	header:  magic[8] | version u32 | crc32c(magic+version) u32
//	chunk:   length u32 (> 0) | payload[length] | crc32c(payload) u32
//	footer:  0 u32 | payload bytes u64 | chunk count u64 |
//	         crc32c(all payload) u32 | end magic[8]
//
// The zero length doubles as the end-of-chunks sentinel, so a reader
// never confuses a truncated chunk with the footer: either the footer
// parses and its totals, stream CRC and end magic all match, or the
// frame is corrupt. Chunk payloads are individually CRC-guarded so a
// flipped bit is caught at the chunk that carries it, without reading
// the rest of the stream.
const (
	frameMagic = "RHSCdur1"
	endMagic   = "RHSCend1"

	// Version is the current frame format version.
	Version = 1

	// MagicLen is how many leading bytes IsFramed needs to decide.
	MagicLen = len(frameMagic)

	// DefaultChunkSize is the writer's flush granularity.
	DefaultChunkSize = 64 << 10

	// maxChunkSize rejects absurd chunk lengths before allocating:
	// a corrupted length field must not drive a multi-GiB allocation.
	maxChunkSize = 1 << 30

	headerLen = 16
	footerLen = 4 + 8 + 8 + 4 + 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsFramed reports whether head (>= MagicLen bytes of a stream's
// start) begins a durable frame. Shorter slices report false.
func IsFramed(head []byte) bool {
	return len(head) >= MagicLen && string(head[:MagicLen]) == frameMagic
}

// Writer frames a stream onto an underlying io.Writer. Write buffers
// payload into chunks; Seal flushes the tail chunk and writes the
// footer. A frame that is not sealed is detectably incomplete — that
// is the crash-consistency property the commit protocol builds on.
type Writer struct {
	w          io.Writer
	pending    []byte
	headerDone bool
	chunks     uint64
	total      uint64
	stream     uint32
	sealed     bool
	scratch    [footerLen]byte
}

// NewWriter starts a frame on w. The header is written lazily with the
// first chunk so that a failed payload producer leaves no partial
// frame behind an empty file.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, pending: make([]byte, 0, DefaultChunkSize)}
}

// Reset rearms the writer onto a new underlying stream, reusing its
// chunk buffer (pooled-buffer callers re-frame without allocating).
func (fw *Writer) Reset(w io.Writer) {
	fw.w = w
	fw.pending = fw.pending[:0]
	fw.headerDone = false
	fw.chunks, fw.total, fw.stream = 0, 0, 0
	fw.sealed = false
}

// Write buffers p, flushing DefaultChunkSize chunks as they fill.
func (fw *Writer) Write(p []byte) (int, error) {
	if fw.sealed {
		return 0, fmt.Errorf("durable: write after Seal")
	}
	n := len(p)
	for len(p) > 0 {
		space := DefaultChunkSize - len(fw.pending)
		take := len(p)
		if take > space {
			take = space
		}
		fw.pending = append(fw.pending, p[:take]...)
		p = p[take:]
		if len(fw.pending) == DefaultChunkSize {
			if err := fw.flushChunk(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

// writeHeader emits the frame header once.
func (fw *Writer) writeHeader() error {
	if fw.headerDone {
		return nil
	}
	var hdr [headerLen]byte
	copy(hdr[:8], frameMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(hdr[:12], castagnoli))
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	fw.headerDone = true
	return nil
}

// flushChunk writes the pending payload as one guarded chunk.
func (fw *Writer) flushChunk() error {
	if len(fw.pending) == 0 {
		return nil
	}
	if err := fw.writeHeader(); err != nil {
		return err
	}
	b := fw.scratch[:8]
	binary.LittleEndian.PutUint32(b[:4], uint32(len(fw.pending)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(fw.pending, castagnoli))
	if _, err := fw.w.Write(b[:4]); err != nil {
		return err
	}
	if _, err := fw.w.Write(fw.pending); err != nil {
		return err
	}
	if _, err := fw.w.Write(b[4:8]); err != nil {
		return err
	}
	fw.stream = crc32.Update(fw.stream, castagnoli, fw.pending)
	fw.total += uint64(len(fw.pending))
	fw.chunks++
	fw.pending = fw.pending[:0]
	return nil
}

// Seal flushes the tail chunk and writes the footer. After Seal the
// frame is complete; further Writes fail. Seal does not sync or close
// the underlying writer — that is the commit protocol's job.
func (fw *Writer) Seal() error {
	if fw.sealed {
		return nil
	}
	if err := fw.flushChunk(); err != nil {
		return err
	}
	if err := fw.writeHeader(); err != nil {
		return err // empty payload: header + footer only
	}
	b := fw.scratch[:]
	binary.LittleEndian.PutUint32(b[0:4], 0)
	binary.LittleEndian.PutUint64(b[4:12], fw.total)
	binary.LittleEndian.PutUint64(b[12:20], fw.chunks)
	binary.LittleEndian.PutUint32(b[20:24], fw.stream)
	copy(b[24:32], endMagic)
	if _, err := fw.w.Write(b); err != nil {
		return err
	}
	fw.sealed = true
	return nil
}

// Reader unwraps and verifies a frame as it streams. Read serves
// payload bytes whose chunk CRC has already been checked; the footer
// is validated when the chunk sentinel is reached. Callers that must
// rule out truncation past their last read (every load path) call
// Verify after decoding.
type Reader struct {
	r      io.Reader
	buf    []byte // current verified chunk
	off    int
	chunks uint64
	total  uint64
	stream uint32
	done   bool // footer validated
	failed error
}

// NewReader validates the frame header of r and returns the verifying
// reader. A bad or truncated header is reported as corruption.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corrupt("durable: frame header", err)
	}
	if string(hdr[:8]) != frameMagic {
		return nil, corruptf("durable: frame header", "bad magic %q", hdr[:8])
	}
	if got, want := binary.LittleEndian.Uint32(hdr[12:16]), crc32.Checksum(hdr[:12], castagnoli); got != want {
		return nil, corruptf("durable: frame header", "header crc %08x, want %08x", got, want)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != Version {
		return nil, corruptf("durable: frame header", "format version %d, reader speaks %d", v, Version)
	}
	return &Reader{r: r}, nil
}

// Read implements io.Reader over the verified payload.
func (fr *Reader) Read(p []byte) (int, error) {
	if fr.failed != nil {
		return 0, fr.failed
	}
	for fr.off == len(fr.buf) {
		if fr.done {
			return 0, io.EOF
		}
		if err := fr.nextChunk(); err != nil {
			fr.failed = err
			return 0, err
		}
		if fr.done {
			return 0, io.EOF
		}
	}
	n := copy(p, fr.buf[fr.off:])
	fr.off += n
	return n, nil
}

// nextChunk loads and verifies the next chunk, or validates the footer
// when the sentinel is reached.
func (fr *Reader) nextChunk() error {
	var lenb [4]byte
	if _, err := io.ReadFull(fr.r, lenb[:]); err != nil {
		return corrupt("durable: chunk length", err)
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n == 0 {
		return fr.readFooter()
	}
	if n > maxChunkSize {
		return corruptf("durable: chunk length", "chunk of %d bytes exceeds limit", n)
	}
	// Grow in bounded steps: a corrupted length field must run the
	// stream dry and fail, not drive a giant up-front allocation.
	fr.buf = fr.buf[:0]
	fr.off = 0
	for remaining := int(n); remaining > 0; {
		step := remaining
		if step > 1<<20 {
			step = 1 << 20
		}
		start := len(fr.buf)
		fr.buf = append(fr.buf, make([]byte, step)...)
		if _, err := io.ReadFull(fr.r, fr.buf[start:]); err != nil {
			return corrupt("durable: chunk payload", err)
		}
		remaining -= step
	}
	var crcb [4]byte
	if _, err := io.ReadFull(fr.r, crcb[:]); err != nil {
		return corrupt("durable: chunk crc", err)
	}
	if got, want := binary.LittleEndian.Uint32(crcb[:]), crc32.Checksum(fr.buf, castagnoli); got != want {
		return corruptf("durable: chunk crc", "chunk %d crc %08x, want %08x", fr.chunks, got, want)
	}
	fr.stream = crc32.Update(fr.stream, castagnoli, fr.buf)
	fr.total += uint64(n)
	fr.chunks++
	return nil
}

// readFooter validates totals, stream CRC and the end magic, then
// requires the underlying stream to end: trailing bytes after a sealed
// footer mean the file is not the file that was committed.
func (fr *Reader) readFooter() error {
	var ftr [footerLen - 4]byte // sentinel already consumed
	if _, err := io.ReadFull(fr.r, ftr[:]); err != nil {
		return corrupt("durable: frame footer", err)
	}
	total := binary.LittleEndian.Uint64(ftr[0:8])
	chunks := binary.LittleEndian.Uint64(ftr[8:16])
	stream := binary.LittleEndian.Uint32(ftr[16:20])
	if string(ftr[20:28]) != endMagic {
		return corruptf("durable: frame footer", "bad end magic %q", ftr[20:28])
	}
	if total != fr.total || chunks != fr.chunks {
		return corruptf("durable: frame footer",
			"footer declares %d bytes in %d chunks, stream carried %d in %d",
			total, chunks, fr.total, fr.chunks)
	}
	if stream != fr.stream {
		return corruptf("durable: frame footer", "stream crc %08x, want %08x", fr.stream, stream)
	}
	var one [1]byte
	if n, _ := fr.r.Read(one[:]); n != 0 {
		return corruptf("durable: frame footer", "trailing data after sealed footer")
	}
	fr.done = true
	return nil
}

// Verify drains any unread payload and validates the footer. It is the
// mandatory last step of every load: a decoder that stopped early
// (gob reads exactly one value) has not yet proven the tail of the
// file exists. Idempotent once the footer has been validated.
func (fr *Reader) Verify() error {
	if fr.failed != nil {
		return fr.failed
	}
	var sink [4096]byte
	for !fr.done {
		if _, err := fr.Read(sink[:]); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
	}
	return nil
}

// PayloadBytes reports how many payload bytes have been verified so
// far (after Verify: the whole payload).
func (fr *Reader) PayloadBytes() uint64 { return fr.total }

// --- in-memory blob helpers --------------------------------------------

// AppendBlob appends a complete sealed frame of payload onto dst and
// returns the extended slice. It is the allocation-friendly path for
// in-memory consumers (the damr buddy-checkpoint exchange reuses its
// pooled pack buffers): one header, one chunk, one footer.
func AppendBlob(dst, payload []byte) []byte {
	var hdr [headerLen]byte
	copy(hdr[:8], frameMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(hdr[:12], castagnoli))
	dst = append(dst, hdr[:]...)

	// A zero-length chunk would collide with the footer sentinel, so an
	// empty payload writes no chunk at all — header + footer only.
	var chunks uint64
	var stream uint32
	if len(payload) > 0 {
		crc := crc32.Checksum(payload, castagnoli)
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(payload)))
		dst = append(dst, b[:]...)
		dst = append(dst, payload...)
		binary.LittleEndian.PutUint32(b[:], crc)
		dst = append(dst, b[:]...)
		chunks, stream = 1, crc
	}

	var ftr [footerLen]byte
	binary.LittleEndian.PutUint32(ftr[0:4], 0)
	binary.LittleEndian.PutUint64(ftr[4:12], uint64(len(payload)))
	binary.LittleEndian.PutUint64(ftr[12:20], chunks)
	binary.LittleEndian.PutUint32(ftr[20:24], stream)
	copy(ftr[24:32], endMagic)
	return append(dst, ftr[:]...)
}

// ExtractBlob verifies a complete in-memory frame and returns its
// payload. Single-chunk frames (everything AppendBlob writes) return a
// sub-slice of b without copying; multi-chunk frames are joined.
func ExtractBlob(b []byte) ([]byte, error) {
	if len(b) < headerLen+footerLen {
		return nil, corruptf("durable: blob", "frame of %d bytes is shorter than header+footer", len(b))
	}
	if !IsFramed(b) {
		return nil, corruptf("durable: blob", "bad magic %q", b[:MagicLen])
	}
	if got, want := binary.LittleEndian.Uint32(b[12:16]), crc32.Checksum(b[:12], castagnoli); got != want {
		return nil, corruptf("durable: blob", "header crc %08x, want %08x", got, want)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != Version {
		return nil, corruptf("durable: blob", "format version %d, reader speaks %d", v, Version)
	}
	rest := b[headerLen:]
	var first []byte
	var joined []byte
	var chunks, total uint64
	var stream uint32
	for {
		if len(rest) < 4 {
			return nil, corruptf("durable: blob", "truncated at chunk length")
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if n == 0 {
			break
		}
		if n > maxChunkSize || uint64(len(rest)) < uint64(n)+4 {
			return nil, corruptf("durable: blob", "truncated chunk of declared %d bytes", n)
		}
		payload := rest[:n]
		crc := binary.LittleEndian.Uint32(rest[n : n+4])
		if want := crc32.Checksum(payload, castagnoli); crc != want {
			return nil, corruptf("durable: blob", "chunk %d crc %08x, want %08x", chunks, crc, want)
		}
		rest = rest[n+4:]
		if chunks == 0 {
			first = payload
		} else {
			if joined == nil {
				joined = append(joined, first...)
			}
			joined = append(joined, payload...)
		}
		stream = crc32.Update(stream, castagnoli, payload)
		total += uint64(n)
		chunks++
	}
	if len(rest) != footerLen-4 {
		return nil, corruptf("durable: blob", "footer is %d bytes, want %d", len(rest), footerLen-4)
	}
	if string(rest[20:28]) != endMagic {
		return nil, corruptf("durable: blob", "bad end magic %q", rest[20:28])
	}
	if binary.LittleEndian.Uint64(rest[0:8]) != total ||
		binary.LittleEndian.Uint64(rest[8:16]) != chunks {
		return nil, corruptf("durable: blob", "footer totals disagree with stream")
	}
	if binary.LittleEndian.Uint32(rest[16:20]) != stream {
		return nil, corruptf("durable: blob", "stream crc mismatch")
	}
	if joined != nil {
		return joined, nil
	}
	return first, nil
}

// --- length-prefixed sections ------------------------------------------

// WriteSection writes one length-prefixed byte section into w. Callers
// that pack several logical payloads into one frame (the serve spool:
// job metadata + snapshot) delimit them with sections, so the whole
// record commits atomically as a single file.
func WriteSection(w io.Writer, b []byte) error {
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], uint64(len(b)))
	if _, err := w.Write(lenb[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadSection reads one section written by WriteSection. The length is
// sanity-capped: sections live inside verified frames, so an absurd
// length means a logic error, not bit rot — but it must not drive an
// absurd allocation either way.
func ReadSection(r io.Reader) ([]byte, error) {
	var lenb [8]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return nil, corrupt("durable: section length", err)
	}
	n := binary.LittleEndian.Uint64(lenb[:])
	if n > maxChunkSize {
		return nil, corruptf("durable: section length", "section of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, corrupt("durable: section payload", err)
	}
	return b, nil
}

// --- stream sniffing ---------------------------------------------------

// Sniff peeks at a stream's first bytes and returns a payload reader
// plus the frame Reader when the stream is framed, or the buffered
// stream itself (nil Reader) for legacy raw payloads. Load paths use
// it to accept both framed and pre-framing checkpoints; when the
// returned Reader is non-nil the caller must Verify after decoding.
func Sniff(r io.Reader) (io.Reader, *Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(MagicLen)
	if err != nil && err != io.EOF {
		return nil, nil, err
	}
	if !IsFramed(head) {
		return br, nil, nil
	}
	fr, err := NewReader(br)
	if err != nil {
		return nil, nil, err
	}
	return fr, fr, nil
}
