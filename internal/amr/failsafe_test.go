package amr

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// allLeaves returns the index set covering every leaf.
func allLeaves(tr *Tree) []int {
	idx := make([]int, tr.NumLeaves())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// TestFailSafeTreeZeroTroubledBitwise: with no troubled cells the
// fail-safe tree must be bitwise identical to the plain tree — the
// detector only reads, and the stage sync re-enters c2p at converged
// pressures.
func TestFailSafeTreeZeroTroubledBitwise(t *testing.T) {
	build := func(fs bool) *Tree {
		cfg := DefaultConfig(core.DefaultConfig())
		cfg.MaxLevel = 1
		cfg.Core.FailSafe = fs
		tr, err := NewTree(testprob.KelvinHelmholtz2D, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plain, safe := build(false), build(true)
	for s := 0; s < 6; s++ {
		dtP, dtS := plain.MaxDt(), safe.MaxDt()
		if dtP != dtS {
			t.Fatalf("step %d: dt diverged: %v vs %v", s, dtP, dtS)
		}
		if err := plain.Step(dtP); err != nil {
			t.Fatal(err)
		}
		if err := safe.Step(dtS); err != nil {
			t.Fatal(err)
		}
	}
	if safe.TroubledCells() != 0 || safe.RepairedCells() != 0 {
		t.Fatalf("clean run flagged cells: troubled=%d repaired=%d",
			safe.TroubledCells(), safe.RepairedCells())
	}
	bp, err := plain.EncodeLeaves(allLeaves(plain))
	if err != nil {
		t.Fatal(err)
	}
	bs, err := safe.EncodeLeaves(allLeaves(safe))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bp, bs) {
		t.Fatal("fail-safe tree diverged bitwise from the plain tree on a clean run")
	}
}

// khFSTree builds a uniform (MaxLevel 0) fail-safe tree on the doubly
// periodic KH problem — block faces everywhere, exact conservation.
func khFSTree(t *testing.T, mut func(*Config)) *Tree {
	t.Helper()
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 0
	cfg.Core.FailSafe = true
	if mut != nil {
		mut(&cfg)
	}
	tr, err := NewTree(testprob.KelvinHelmholtz2D, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestFaultFailSafeTreeRepairConserves poisons a cell adjacent to a
// block face mid-stage: the repair must complete, the neighbour leaf
// must apply the matching corrected flux through its mask ghosts, and
// the totals must hold to round-off.
func TestFaultFailSafeTreeRepairConserves(t *testing.T) {
	var stage1Calls int
	tr := khFSTree(t, func(cfg *Config) {
		ng := cfg.Core.Recon.Ghost()
		totalX := cfg.BlockN + 2*ng
		// Last interior column, mid-height: the repaired faces straddle the
		// x-face shared with the next block (and, periodically, column 0).
		idx := (ng+cfg.BlockN/2)*totalX + (ng + cfg.BlockN - 1)
		cfg.Core.FaultHook = func(stage int, u *state.Fields) {
			if stage != 1 {
				return
			}
			stage1Calls++
			// 4 leaves per stage: call 9 is the first leaf of step 3.
			if stage1Calls == 9 {
				u.Comp[state.ITau][idx] = math.NaN()
			}
		}
	})
	mass0, en0 := tr.TotalMass(), tr.TotalEnergy()
	for s := 0; s < 8; s++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	if tr.TroubledCells() == 0 {
		t.Fatal("injected fault never flagged")
	}
	if tr.RepairedCells() != tr.TroubledCells() {
		t.Fatalf("repaired %d of %d troubled cells", tr.RepairedCells(), tr.TroubledCells())
	}
	if dm := math.Abs(tr.TotalMass()-mass0) / mass0; dm > 1e-12 {
		t.Fatalf("mass drift %.3e after local repair", dm)
	}
	if de := math.Abs(tr.TotalEnergy()-en0) / en0; de > 1e-12 {
		t.Fatalf("energy drift %.3e after local repair", de)
	}
	if p := tr.SampleAt(0.49, 0.0); !(p.Rho > 0 && p.P > 0) {
		t.Fatalf("unphysical repaired state: %+v", p)
	}
}

// TestFailSafeTreeMaxFracDemotes: a troubled fraction above the
// configured bound must surface as a *core.StateError from Step, not a
// local repair.
func TestFailSafeTreeMaxFracDemotes(t *testing.T) {
	tr := khFSTree(t, func(cfg *Config) {
		cfg.Core.FailSafeMaxFrac = 0.5 / float64(32*32)
		ng := cfg.Core.Recon.Ghost()
		totalX := cfg.BlockN + 2*ng
		idx := (ng+4)*totalX + ng + 4
		cfg.Core.FaultHook = func(stage int, u *state.Fields) {
			if stage == 1 {
				// Every leaf, every step: far more than half a cell's worth.
				u.Comp[state.ITau][idx] = math.NaN()
			}
		}
	})
	err := tr.Step(tr.MaxDt())
	var se *core.StateError
	if !errors.As(err, &se) {
		t.Fatalf("expected StateError demotion, got %v", err)
	}
	if se.Troubled < 2 || se.RepairFailed {
		t.Fatalf("unexpected demotion shape: %+v", se)
	}
	if tr.RepairedCells() != 0 {
		t.Fatalf("demoted stage repaired cells: %d", tr.RepairedCells())
	}
}
