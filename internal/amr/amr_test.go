package amr

import (
	"math"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/exact"
	"rhsc/internal/grid"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

func defaultTree(t *testing.T, p *testprob.Problem, nbx int, maxLevel int) *Tree {
	t.Helper()
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = maxLevel
	tr, err := NewTree(p, nbx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTreeValidation(t *testing.T) {
	base := core.DefaultConfig()
	bad := []Config{
		func() Config { c := DefaultConfig(base); c.BlockN = 3; return c }(), // below 2*ghost and odd
		func() Config { c := DefaultConfig(base); c.BlockN = 6; c.MaxLevel = -1; return c }(),
		func() Config { c := DefaultConfig(base); c.RefineTol = 0.01; c.CoarsenTol = 0.05; return c }(),
		func() Config {
			c := DefaultConfig(base)
			c.Core.HaloExchange = func(*state.Fields) {}
			return c
		}(),
		func() Config {
			c := DefaultConfig(base)
			c.Core.TileExec = func(int, func(lo, hi int)) {}
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := NewTree(testprob.Sod, 4, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewTree(testprob.Sod, 0, DefaultConfig(base)); err == nil {
		t.Error("0 root blocks accepted")
	}
	if _, err := NewTree(testprob.Blast3D, 4, DefaultConfig(base)); err == nil {
		t.Error("3-D problem accepted by the quadtree")
	}
}

// The bootstrap must refine around the Sod discontinuity and nowhere else.
func TestBootstrapRefinesDiscontinuity(t *testing.T) {
	tr := defaultTree(t, testprob.Sod, 8, 2)
	if tr.MaxLevelInUse() != 2 {
		t.Errorf("max level in use = %d, want 2", tr.MaxLevelInUse())
	}
	// The fine leaves must be near x = 0.5.
	for _, n := range tr.leaves {
		if n.level == 2 {
			x0, x1, _, _ := tr.blockExtent(n.level, n.bi, n.bj)
			if x1 < 0.4 || x0 > 0.6 {
				t.Errorf("level-2 leaf at [%v,%v] far from the discontinuity", x0, x1)
			}
		}
	}
	// And the tree must be far smaller than the fully refined mesh.
	full := 8 * 16 * 4 // root cells x 2^maxLevel
	if tr.TotalZones() >= full {
		t.Errorf("AMR zones %d not below uniform-fine %d", tr.TotalZones(), full)
	}
}

func TestSampleAtInitialData(t *testing.T) {
	tr := defaultTree(t, testprob.Sod, 8, 1)
	if p := tr.SampleAt(0.1, 0); math.Abs(p.Rho-10) > 1e-12 {
		t.Errorf("left state rho = %v", p.Rho)
	}
	if p := tr.SampleAt(0.9, 0); math.Abs(p.Rho-1) > 1e-12 {
		t.Errorf("right state rho = %v", p.Rho)
	}
}

// The 1-D Sod problem on AMR must track the exact solution about as well
// as a uniform grid at the fine resolution, using far fewer zone updates.
func TestSodAMRAccuracyAndEfficiency(t *testing.T) {
	const tEnd = 0.25
	ref, err := exact.Solve(
		exact.State{Rho: 10, V: 0, P: 13.33},
		exact.State{Rho: 1, V: 0, P: 1e-6}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}

	// AMR: 8 root blocks x 16 cells, 2 levels => effective 512 cells.
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 2
	cfg.RegridEvery = 2
	tr, err := NewTree(testprob.Sod, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Advance(tEnd); err != nil {
		t.Fatal(err)
	}

	// L1 error sampled on the effective fine grid.
	nEff := 8 * 16 * 4
	dx := 1.0 / float64(nEff)
	l1 := 0.0
	for i := 0; i < nEff; i++ {
		x := (float64(i) + 0.5) * dx
		got := tr.SampleAt(x, 0).Rho
		want := ref.Sample((x - 0.5) / tEnd).Rho
		l1 += math.Abs(got-want) * dx
	}
	if l1 > 0.25 {
		t.Errorf("AMR L1(rho) = %v, too large", l1)
	}

	// Uniform fine run for the work comparison.
	g := grid.New(grid.Geometry{Nx: nEff, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	s, err := core.New(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(testprob.Sod.Init)
	if _, err := s.Advance(tEnd); err != nil {
		t.Fatal(err)
	}
	uniformWork := s.St.ZoneUpdates.Load()
	if tr.ZoneUpdates() >= uniformWork {
		t.Errorf("AMR work %d not below uniform %d", tr.ZoneUpdates(), uniformWork)
	}
	// The efficiency experiment expects at least ~2x fewer zone updates.
	if ratio := float64(uniformWork) / float64(tr.ZoneUpdates()); ratio < 2 {
		t.Errorf("AMR saving ratio %v < 2", ratio)
	}
}

// Refinement must conserve mass exactly: piecewise-constant prolongation
// copies parent cell values onto children covering the same volume.
func TestRefineConservesMass(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 1
	cfg.RefineTol = 1e9 // no automatic refinement
	tr, err := NewTree(testprob.Sod, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m0 := tr.TotalMass()
	if err := tr.refine(tr.leaves[1]); err != nil {
		t.Fatal(err)
	}
	tr.rebuildLeaves()
	if rel := math.Abs(tr.TotalMass()-m0) / m0; rel > 1e-14 {
		t.Errorf("refine changed mass by %v", rel)
	}
	if tr.NumLeaves() != 5 { // 4 roots - 1 + 2 children
		t.Errorf("leaves = %d, want 5", tr.NumLeaves())
	}
}

// Coarsening must also conserve mass (averaging restriction), and a
// refine+coarsen round trip restores the original data for piecewise-
// constant content.
func TestCoarsenConservesMassAndRoundTrips(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 1
	cfg.RefineTol = 1e9
	tr, err := NewTree(testprob.Sod, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parent := tr.leaves[2]
	before := parent.sol.G.U.Clone()
	m0 := tr.TotalMass()
	if err := tr.refine(parent); err != nil {
		t.Fatal(err)
	}
	tr.rebuildLeaves()
	if err := tr.coarsen(parent); err != nil {
		t.Fatal(err)
	}
	tr.rebuildLeaves()
	if rel := math.Abs(tr.TotalMass()-m0) / m0; rel > 1e-14 {
		t.Errorf("refine+coarsen changed mass by %v", rel)
	}
	after := parent.sol.G.U
	g := parent.sol.G
	g.ForEachInterior(func(idx, _, _, _ int) {
		if math.Abs(after.Comp[state.ID][idx]-before.Comp[state.ID][idx]) > 1e-14 {
			t.Fatalf("round trip changed D at %d: %v vs %v",
				idx, after.Comp[state.ID][idx], before.Comp[state.ID][idx])
		}
	})
}

// Mass conservation: the unrefluxed coarse-fine interfaces cause a drift
// that must stay tiny relative to the total mass.
func TestMassDriftSmall(t *testing.T) {
	tr := defaultTree(t, testprob.Sod, 8, 2)
	m0 := tr.TotalMass()
	if _, err := tr.Advance(0.15); err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(tr.TotalMass()-m0) / m0
	if drift > 5e-3 {
		t.Errorf("mass drift %v exceeds 0.5%%", drift)
	}
}

// 2:1 balance must hold after every regrid.
func TestTwoToOneBalance(t *testing.T) {
	tr := defaultTree(t, testprob.Sod, 8, 3)
	check := func() {
		for _, n := range tr.leaves {
			for _, k := range tr.neighborKeys(n) {
				if l := tr.regionMaxLevel(k); l > n.level+1 {
					t.Fatalf("leaf L%d (%d,%d) has neighbour at level %d", n.level, n.bi, n.bj, l)
				}
			}
		}
	}
	check()
	for i := 0; i < 6; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

// As the shock moves, blocks ahead refine and blocks behind coarsen: the
// leaf count must stay bounded rather than monotonically growing.
func TestRegridFollowsShock(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 2
	cfg.RegridEvery = 2
	tr, err := NewTree(testprob.Sod, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := tr.NumLeaves()
	if _, err := tr.Advance(0.3); err != nil {
		t.Fatal(err)
	}
	final := tr.NumLeaves()
	// The Riemann fan spreads over roughly half the domain; the leaf count
	// may grow, but far less than full refinement (which would be
	// 8 + 8*... every root fully refined = 8*(4+16)/... just bound it).
	fullyRefined := 8 * (1 + 2 + 4) // all nodes refined to level 2 in 1-D
	if final >= fullyRefined {
		t.Errorf("leaf count %d reached full refinement %d", final, fullyRefined)
	}
	if final < initial/4 {
		t.Errorf("leaf count collapsed: %d -> %d", initial, final)
	}
	// Fine coverage must have moved with the shock: some level-2 leaf
	// beyond x = 0.6.
	found := false
	for _, n := range tr.leaves {
		if n.level == 2 {
			x0, _, _, _ := tr.blockExtent(n.level, n.bi, n.bj)
			if x0 > 0.6 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no fine leaves ahead of the initial discontinuity after advection")
	}
}

// A smooth periodic problem must not refine at all (indicator below
// threshold everywhere).
func TestSmoothProblemStaysCoarse(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 2
	cfg.RefineTol = 0.2 // smooth wave max jump ~ 2pi*0.3/32 << 0.2
	tr, err := NewTree(testprob.SmoothWave, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxLevelInUse() != 0 {
		t.Errorf("smooth problem refined to level %d", tr.MaxLevelInUse())
	}
	if _, err := tr.Advance(0.1); err != nil {
		t.Fatal(err)
	}
	if tr.MaxLevelInUse() != 0 {
		t.Errorf("smooth problem refined during evolution")
	}
}

// 2-D: the cylindrical blast must refine around the ring and preserve
// quadrant symmetry on the tree.
func TestBlast2DAMR(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 1
	cfg.BlockN = 8
	cfg.RegridEvery = 3
	tr, err := NewTree(testprob.Blast2D, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxLevelInUse() < 1 {
		t.Fatal("blast did not refine")
	}
	for i := 0; i < 6; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	// Quadrant symmetry of the sampled solution.
	for _, pt := range [][2]float64{{0.2, 0.1}, {0.35, 0.35}, {0.05, 0.4}} {
		a := tr.SampleAt(pt[0], pt[1]).Rho
		b := tr.SampleAt(-pt[0], pt[1]).Rho
		c := tr.SampleAt(pt[0], -pt[1]).Rho
		if math.Abs(a-b) > 1e-9*(1+a) || math.Abs(a-c) > 1e-9*(1+a) {
			t.Errorf("symmetry broken at %v: %v %v %v", pt, a, b, c)
		}
	}
	if tr.Time() <= 0 {
		t.Error("time did not advance")
	}
}

func TestStepRejectsBadDt(t *testing.T) {
	tr := defaultTree(t, testprob.Sod, 4, 0)
	if err := tr.Step(0); err == nil {
		t.Error("dt = 0 accepted")
	}
}

// MaxLevel 0 must behave like a plain block-decomposed uniform grid and
// agree with the single-grid solver on the same effective resolution.
func TestLevelZeroMatchesUniform(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 0
	tr, err := NewTree(testprob.Sod, 8, cfg) // 8 x 16 = 128 cells
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Advance(0.2); err != nil {
		t.Fatal(err)
	}

	g := grid.New(grid.Geometry{Nx: 128, Ny: 1, Nz: 1, Ng: 2, X0: 0, X1: 1})
	g.SetAllBCs(grid.Outflow)
	s, err := core.New(g, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.InitFromPrim(testprob.Sod.Init)
	if _, err := s.Advance(0.2); err != nil {
		t.Fatal(err)
	}
	// Same scheme, same dt sequence (identical CFL data) => nearly
	// identical profiles; allow tiny drift from block-local arithmetic.
	maxDiff := 0.0
	for i := 0; i < 128; i++ {
		x := (float64(i) + 0.5) / 128
		a := tr.SampleAt(x, 0).Rho
		b := g.W.Comp[state.IRho][g.IBeg()+i]
		if d := math.Abs(a - b); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Errorf("block-decomposed vs uniform max diff %v", maxDiff)
	}
}
