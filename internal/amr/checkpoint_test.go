package amr

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"strings"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/output"
	"rhsc/internal/testprob"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 2
	cfg.RegridEvery = 2
	tr, err := NewTree(testprob.Sod, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Advance(0.1); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Time() != tr.Time() {
		t.Errorf("time %v, want %v", restored.Time(), tr.Time())
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Errorf("leaves %d, want %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if restored.MaxLevelInUse() != tr.MaxLevelInUse() {
		t.Errorf("max level %d, want %d", restored.MaxLevelInUse(), tr.MaxLevelInUse())
	}
	if rel := math.Abs(restored.TotalMass()-tr.TotalMass()) / tr.TotalMass(); rel > 1e-14 {
		t.Errorf("mass differs by %v", rel)
	}
	if restored.ZoneUpdates() != tr.ZoneUpdates() {
		t.Errorf("zone updates %d, want %d", restored.ZoneUpdates(), tr.ZoneUpdates())
	}

	// Continue both and compare samples (agreement to c2p tolerance).
	if _, err := tr.Advance(0.15); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Advance(0.15); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 0.45, 0.55, 0.8} {
		a := tr.SampleAt(x, 0)
		b := restored.SampleAt(x, 0)
		if math.Abs(a.Rho-b.Rho) > 1e-8*(1+a.Rho) || math.Abs(a.P-b.P) > 1e-8*(1+a.P) {
			t.Errorf("restored run diverged at x=%v: %+v vs %+v", x, a, b)
		}
	}
}

// TestCheckpointAfterRegrid saves immediately after a step that regridded
// — the structure the restored tree must rebuild includes both refined
// and (potentially) coarsened regions created mid-run, which is exactly
// the serialization state block migration reuses. Stepping both trees
// onward must keep their conserved sums together.
func TestCheckpointAfterRegrid(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 2
	cfg.BlockN = 8
	cfg.RegridEvery = 3
	tr, err := NewTree(testprob.Blast2D, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Land exactly on a regrid step so the checkpoint captures a
	// just-reshaped hierarchy, and verify at least one regrid changed it.
	leaves0 := tr.NumLeaves()
	for i := 0; i < 2*cfg.RegridEvery; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Steps()%cfg.RegridEvery != 0 {
		t.Fatalf("test out of phase: %d steps, regrid every %d", tr.Steps(), cfg.RegridEvery)
	}

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Fatalf("restored %d leaves, want %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if restored.Steps() != tr.Steps() {
		t.Errorf("restored %d steps, want %d", restored.Steps(), tr.Steps())
	}

	// Step both trees in lockstep past another regrid and compare the
	// conserved sums — identical grids must produce identical dynamics
	// (tolerance covers the con2prim re-seed on load).
	for i := 0; i < 2*cfg.RegridEvery; i++ {
		dt := tr.MaxDt()
		if err := tr.Step(dt); err != nil {
			t.Fatal(err)
		}
		if err := restored.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Errorf("after stepping: %d leaves vs %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if rel := math.Abs(restored.TotalMass()-tr.TotalMass()) / tr.TotalMass(); rel > 1e-12 {
		t.Errorf("conserved sums diverged by %v", rel)
	}
	if tr.NumLeaves() == leaves0 && tr.MaxLevelInUse() == 0 {
		t.Error("hierarchy never refined — the test exercised nothing")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("junk"), core.DefaultConfig()); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckpoint2D(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 1
	cfg.BlockN = 8
	tr, err := NewTree(testprob.Blast2D, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Errorf("2D leaves %d, want %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if rel := math.Abs(restored.TotalMass()-tr.TotalMass()) / tr.TotalMass(); rel > 1e-14 {
		t.Errorf("2D mass differs by %v", rel)
	}
}

// TestTreeFromLeafBlobsBitExact pins the rank-failure recovery property:
// a tree rebuilt from EncodeLeaves blobs (which carry U and W, including
// ghosts) continues bit-identically to the original — unlike Load, which
// re-recovers primitives and only matches to c2p tolerance.
func TestTreeFromLeafBlobsBitExact(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = 2
	cfg.RegridEvery = 2
	tr, err := NewTree(testprob.Blast2D, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}

	// Encode the leaves split across two "ranks" to mimic buddy blobs.
	n := tr.NumLeaves()
	half := make([]int, 0, n)
	rest := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i < n/2 {
			half = append(half, i)
		} else {
			rest = append(rest, i)
		}
	}
	blobA, err := tr.EncodeLeaves(half)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := tr.EncodeLeaves(rest)
	if err != nil {
		t.Fatal(err)
	}

	re, err := TreeFromLeafBlobs(testprob.Blast2D, 4, cfg,
		[][]byte{blobA, blobB}, tr.Time(), tr.Steps(), tr.ZoneUpdates())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumLeaves() != n || re.Steps() != tr.Steps() || re.Time() != tr.Time() {
		t.Fatalf("rebuild mismatch: %d leaves t=%v steps=%d", re.NumLeaves(), re.Time(), re.Steps())
	}

	// March both six more steps (crossing a regrid) and demand bitwise
	// agreement of every leaf's raw conserved and primitive data.
	for i := 0; i < 6; i++ {
		dtA, dtB := tr.MaxDt(), re.MaxDt()
		if dtA != dtB {
			t.Fatalf("step %d: dt %v vs %v", i, dtA, dtB)
		}
		if err := tr.Step(dtA); err != nil {
			t.Fatal(err)
		}
		if err := re.Step(dtB); err != nil {
			t.Fatal(err)
		}
	}
	if re.NumLeaves() != tr.NumLeaves() {
		t.Fatalf("leaf count diverged: %d vs %d", re.NumLeaves(), tr.NumLeaves())
	}
	refA, refB := tr.LeafRefs(), re.LeafRefs()
	for i := range refA {
		if refA[i] != refB[i] {
			t.Fatalf("leaf %d ref %v vs %v", i, refA[i], refB[i])
		}
	}
	for i := range refA {
		rawA, rawB := tr.LeafRawU(i), re.LeafRawU(i)
		for j := range rawA {
			if rawA[j] != rawB[j] {
				t.Fatalf("leaf %d word %d: %v vs %v", i, j, rawA[j], rawB[j])
			}
		}
	}
}

func TestLoadErrorTaxonomy(t *testing.T) {
	coreCfg := core.DefaultConfig()
	// Undecodable payload: corrupt.
	_, err := Load(strings.NewReader("junk"), coreCfg)
	if !errors.Is(err, output.ErrCheckpointCorrupt) {
		t.Errorf("garbage classified %v, want ErrCheckpointCorrupt", err)
	}
	// Decodable payloads that cannot fit this build: mismatch.
	bad := []treeCheckpoint{
		{Problem: "no-such-problem", BlockN: 16, Nbx: 4, Nby: 1},
		{Problem: "sod", BlockN: 2, Nbx: 4, Nby: 1}, // < 2×ghost
		{Problem: "sod", BlockN: 16, Nbx: 0, Nby: 1},
		{Problem: "sod", BlockN: 16, Nbx: 4, Nby: 1,
			Leaves: []leafRecord{{Level: 0, Bi: 0, Bj: 0, U: []float64{1}}}},
	}
	for i, cp := range bad {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&cp); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&buf, coreCfg)
		if !errors.Is(err, output.ErrCheckpointMismatch) {
			t.Errorf("bad payload %d classified %v, want ErrCheckpointMismatch", i, err)
		}
		if errors.Is(err, output.ErrCheckpointCorrupt) {
			t.Errorf("bad payload %d also classified as corrupt", i)
		}
	}
	// A truncated valid stream is corrupt again.
	cfg := DefaultConfig(coreCfg)
	tr, err := NewTree(testprob.Sod, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := Load(bytes.NewReader(trunc), coreCfg); !errors.Is(err, output.ErrCheckpointCorrupt) {
		t.Errorf("truncated checkpoint classified %v, want ErrCheckpointCorrupt", err)
	}
}

// TestSaveExactBitIdentical pins the exact-checkpoint contract the job
// server's preemption relies on: SaveExact → Load → continue matches an
// uninterrupted run bit for bit, including across regrid boundaries
// (the persisted step counter keeps the regrid cadence aligned).
func TestSaveExactBitIdentical(t *testing.T) {
	mk := func() *Tree {
		cfg := DefaultConfig(core.DefaultConfig())
		cfg.MaxLevel = 2
		cfg.RegridEvery = 4
		tr, err := NewTree(testprob.Sod, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	stepN := func(tr *Tree, n int) {
		for i := 0; i < n; i++ {
			dt := tr.MaxDt()
			if err := tr.Step(dt); err != nil {
				t.Fatal(err)
			}
		}
	}

	quiet := mk()
	stepN(quiet, 20)

	tr := mk()
	stepN(tr, 10) // parks between regrids (10 is not a multiple of 4)
	var buf bytes.Buffer
	if err := tr.SaveExact(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Fingerprint() != tr.Fingerprint() {
		t.Fatal("state changed across SaveExact round trip")
	}
	if restored.Steps() != 10 {
		t.Fatalf("restored step counter %d, want 10", restored.Steps())
	}
	stepN(restored, 10)
	if restored.Fingerprint() != quiet.Fingerprint() {
		t.Fatalf("restored run diverged from uninterrupted: %016x != %016x",
			restored.Fingerprint(), quiet.Fingerprint())
	}

	// The plain checkpoint, by contrast, re-recovers primitives: still a
	// valid restart, but not bit-identical — which is exactly why the
	// serving layer uses SaveExact.
	var plain bytes.Buffer
	if err := quiet.Save(&plain); err != nil {
		t.Fatal(err)
	}
	replain, err := Load(&plain, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if replain.NumLeaves() != quiet.NumLeaves() {
		t.Fatalf("plain restore leaves %d, want %d", replain.NumLeaves(), quiet.NumLeaves())
	}
}
