package amr

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/testprob"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 2
	cfg.RegridEvery = 2
	tr, err := NewTree(testprob.Sod, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Advance(0.1); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Time() != tr.Time() {
		t.Errorf("time %v, want %v", restored.Time(), tr.Time())
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Errorf("leaves %d, want %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if restored.MaxLevelInUse() != tr.MaxLevelInUse() {
		t.Errorf("max level %d, want %d", restored.MaxLevelInUse(), tr.MaxLevelInUse())
	}
	if rel := math.Abs(restored.TotalMass()-tr.TotalMass()) / tr.TotalMass(); rel > 1e-14 {
		t.Errorf("mass differs by %v", rel)
	}
	if restored.ZoneUpdates() != tr.ZoneUpdates() {
		t.Errorf("zone updates %d, want %d", restored.ZoneUpdates(), tr.ZoneUpdates())
	}

	// Continue both and compare samples (agreement to c2p tolerance).
	if _, err := tr.Advance(0.15); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Advance(0.15); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 0.45, 0.55, 0.8} {
		a := tr.SampleAt(x, 0)
		b := restored.SampleAt(x, 0)
		if math.Abs(a.Rho-b.Rho) > 1e-8*(1+a.Rho) || math.Abs(a.P-b.P) > 1e-8*(1+a.P) {
			t.Errorf("restored run diverged at x=%v: %+v vs %+v", x, a, b)
		}
	}
}

// TestCheckpointAfterRegrid saves immediately after a step that regridded
// — the structure the restored tree must rebuild includes both refined
// and (potentially) coarsened regions created mid-run, which is exactly
// the serialization state block migration reuses. Stepping both trees
// onward must keep their conserved sums together.
func TestCheckpointAfterRegrid(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 2
	cfg.BlockN = 8
	cfg.RegridEvery = 3
	tr, err := NewTree(testprob.Blast2D, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Land exactly on a regrid step so the checkpoint captures a
	// just-reshaped hierarchy, and verify at least one regrid changed it.
	leaves0 := tr.NumLeaves()
	for i := 0; i < 2*cfg.RegridEvery; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Steps()%cfg.RegridEvery != 0 {
		t.Fatalf("test out of phase: %d steps, regrid every %d", tr.Steps(), cfg.RegridEvery)
	}

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Fatalf("restored %d leaves, want %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if restored.Steps() != tr.Steps() {
		t.Errorf("restored %d steps, want %d", restored.Steps(), tr.Steps())
	}

	// Step both trees in lockstep past another regrid and compare the
	// conserved sums — identical grids must produce identical dynamics
	// (tolerance covers the con2prim re-seed on load).
	for i := 0; i < 2*cfg.RegridEvery; i++ {
		dt := tr.MaxDt()
		if err := tr.Step(dt); err != nil {
			t.Fatal(err)
		}
		if err := restored.Step(dt); err != nil {
			t.Fatal(err)
		}
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Errorf("after stepping: %d leaves vs %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if rel := math.Abs(restored.TotalMass()-tr.TotalMass()) / tr.TotalMass(); rel > 1e-12 {
		t.Errorf("conserved sums diverged by %v", rel)
	}
	if tr.NumLeaves() == leaves0 && tr.MaxLevelInUse() == 0 {
		t.Error("hierarchy never refined — the test exercised nothing")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("junk"), core.DefaultConfig()); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckpoint2D(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.MaxLevel = 1
	cfg.BlockN = 8
	tr, err := NewTree(testprob.Blast2D, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumLeaves() != tr.NumLeaves() {
		t.Errorf("2D leaves %d, want %d", restored.NumLeaves(), tr.NumLeaves())
	}
	if rel := math.Abs(restored.TotalMass()-tr.TotalMass()) / tr.TotalMass(); rel > 1e-14 {
		t.Errorf("2D mass differs by %v", rel)
	}
}

// TestTreeFromLeafBlobsBitExact pins the rank-failure recovery property:
// a tree rebuilt from EncodeLeaves blobs (which carry U and W, including
// ghosts) continues bit-identically to the original — unlike Load, which
// re-recovers primitives and only matches to c2p tolerance.
func TestTreeFromLeafBlobsBitExact(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = 2
	cfg.RegridEvery = 2
	tr, err := NewTree(testprob.Blast2D, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := tr.Step(tr.MaxDt()); err != nil {
			t.Fatal(err)
		}
	}

	// Encode the leaves split across two "ranks" to mimic buddy blobs.
	n := tr.NumLeaves()
	half := make([]int, 0, n)
	rest := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i < n/2 {
			half = append(half, i)
		} else {
			rest = append(rest, i)
		}
	}
	blobA, err := tr.EncodeLeaves(half)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := tr.EncodeLeaves(rest)
	if err != nil {
		t.Fatal(err)
	}

	re, err := TreeFromLeafBlobs(testprob.Blast2D, 4, cfg,
		[][]byte{blobA, blobB}, tr.Time(), tr.Steps(), tr.ZoneUpdates())
	if err != nil {
		t.Fatal(err)
	}
	if re.NumLeaves() != n || re.Steps() != tr.Steps() || re.Time() != tr.Time() {
		t.Fatalf("rebuild mismatch: %d leaves t=%v steps=%d", re.NumLeaves(), re.Time(), re.Steps())
	}

	// March both six more steps (crossing a regrid) and demand bitwise
	// agreement of every leaf's raw conserved and primitive data.
	for i := 0; i < 6; i++ {
		dtA, dtB := tr.MaxDt(), re.MaxDt()
		if dtA != dtB {
			t.Fatalf("step %d: dt %v vs %v", i, dtA, dtB)
		}
		if err := tr.Step(dtA); err != nil {
			t.Fatal(err)
		}
		if err := re.Step(dtB); err != nil {
			t.Fatal(err)
		}
	}
	if re.NumLeaves() != tr.NumLeaves() {
		t.Fatalf("leaf count diverged: %d vs %d", re.NumLeaves(), tr.NumLeaves())
	}
	refA, refB := tr.LeafRefs(), re.LeafRefs()
	for i := range refA {
		if refA[i] != refB[i] {
			t.Fatalf("leaf %d ref %v vs %v", i, refA[i], refB[i])
		}
	}
	for i := range refA {
		rawA, rawB := tr.LeafRawU(i), re.LeafRawU(i)
		for j := range rawA {
			if rawA[j] != rawB[j] {
				t.Fatalf("leaf %d word %d: %v vs %v", i, j, rawA[j], rawB[j])
			}
		}
	}
}
