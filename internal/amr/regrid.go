package amr

import (
	"sort"

	"rhsc/internal/grid"
	"rhsc/internal/state"
)

// indicator returns the refinement indicator of a leaf: the maximum
// relative jump of density or pressure between adjacent interior cells.
func (t *Tree) indicator(n *node) float64 {
	g := n.sol.G
	w := g.W
	maxJump := 0.0
	jump := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		s := a + b
		if s <= 0 {
			return 0
		}
		return d / s
	}
	// Pairs include one ghost layer on each side so a discontinuity
	// sitting exactly on a block boundary is still seen.
	for k := g.KBeg(); k < g.KEnd(); k++ {
		for j := g.JBeg(); j < g.JEnd(); j++ {
			row := (k*g.TotalY + j) * g.TotalX
			for i := g.IBeg(); i <= g.IEnd(); i++ {
				if v := jump(w.Comp[state.IRho][row+i], w.Comp[state.IRho][row+i-1]); v > maxJump {
					maxJump = v
				}
				if v := jump(w.Comp[state.IP][row+i], w.Comp[state.IP][row+i-1]); v > maxJump {
					maxJump = v
				}
			}
		}
	}
	if t.dim >= 2 {
		stride := g.TotalX
		for k := g.KBeg(); k < g.KEnd(); k++ {
			for j := g.JBeg(); j <= g.JEnd(); j++ {
				for i := g.IBeg(); i < g.IEnd(); i++ {
					idx := g.Idx(i, j, k)
					if v := jump(w.Comp[state.IRho][idx], w.Comp[state.IRho][idx-stride]); v > maxJump {
						maxJump = v
					}
					if v := jump(w.Comp[state.IP][idx], w.Comp[state.IP][idx-stride]); v > maxJump {
						maxJump = v
					}
				}
			}
		}
	}
	return maxJump
}

// childCount returns children per refinement (2 in 1-D, 4 in 2-D).
func (t *Tree) childCount() int {
	if t.dim == 1 {
		return 2
	}
	return 4
}

// refine splits a leaf into children, prolongating the conserved state
// piecewise-constantly (conservative on the uniform 2:1 split).
func (t *Tree) refine(n *node) error {
	if !n.leaf() {
		return nil
	}
	nc := t.childCount()
	n.children = make([]*node, nc)
	for c := 0; c < nc; c++ {
		cx := c % 2
		cy := c / 2
		child := &node{
			level:  n.level + 1,
			bi:     n.bi*2 + cx,
			bj:     n.bj, // 1-D keeps bj
			parent: n,
		}
		if t.dim >= 2 {
			child.bj = n.bj*2 + cy
		}
		if err := t.attachSolver(child); err != nil {
			return err
		}
		// Prolongate conserved data from the parent cell containing each
		// child cell centre.
		pg := n.sol.G
		cg := child.sol.G
		cg.ForEachInterior(func(idx, i, j, k int) {
			pi := pg.IBeg() + int((cg.X(i)-pg.X0)/pg.Dx)
			if pi >= pg.IEnd() {
				pi = pg.IEnd() - 1
			}
			pj := pg.JBeg()
			if t.dim >= 2 {
				pj = pg.JBeg() + int((cg.Y(j)-pg.Y0)/pg.Dy)
				if pj >= pg.JEnd() {
					pj = pg.JEnd() - 1
				}
			}
			cg.U.SetCons(idx, pg.U.GetCons(pg.Idx(pi, pj, pg.KBeg())))
		})
		child.sol.SetTime(t.t)
		// Recover the child's primitives immediately: regrid decisions in
		// the same pass read them.
		child.sol.RecoverPrimitives()
		t.nodes[key{child.level, child.bi, child.bj}] = child
		n.children[c] = child
	}
	// The parent becomes structural.
	n.sol, n.rhs, n.u0 = nil, nil, nil
	return nil
}

// coarsen merges a parent's leaf children back into the parent by
// conservative averaging. The caller must have verified balance.
func (t *Tree) coarsen(n *node) error {
	if n.leaf() {
		return nil
	}
	if err := t.attachSolver(n); err != nil {
		return err
	}
	pg := n.sol.G
	nc := len(n.children)
	inv := 1.0 / float64(int(1)<<t.dim)
	pg.ForEachInterior(func(idx, i, j, k int) {
		var acc state.Cons
		for c := 0; c < nc; c++ {
			cg := n.children[c].sol.G
			// Child cells covering parent cell (i,j): locate by centre
			// offset ±dx/4.
			for _, fx := range [2]float64{-0.25, 0.25} {
				x := pg.X(i) + fx*pg.Dx
				if x < cg.X0 || x >= cg.X1 {
					continue
				}
				ci := cg.IBeg() + int((x-cg.X0)/cg.Dx)
				if ci >= cg.IEnd() {
					ci = cg.IEnd() - 1
				}
				if t.dim == 1 {
					u := cg.U.GetCons(cg.Idx(ci, cg.JBeg(), cg.KBeg()))
					acc.D += u.D
					acc.Sx += u.Sx
					acc.Sy += u.Sy
					acc.Sz += u.Sz
					acc.Tau += u.Tau
					continue
				}
				for _, fy := range [2]float64{-0.25, 0.25} {
					y := pg.Y(j) + fy*pg.Dy
					if y < cg.Y0 || y >= cg.Y1 {
						continue
					}
					cj := cg.JBeg() + int((y-cg.Y0)/cg.Dy)
					if cj >= cg.JEnd() {
						cj = cg.JEnd() - 1
					}
					u := cg.U.GetCons(cg.Idx(ci, cj, cg.KBeg()))
					acc.D += u.D
					acc.Sx += u.Sx
					acc.Sy += u.Sy
					acc.Sz += u.Sz
					acc.Tau += u.Tau
				}
			}
		}
		acc.D *= inv
		acc.Sx *= inv
		acc.Sy *= inv
		acc.Sz *= inv
		acc.Tau *= inv
		pg.U.SetCons(idx, acc)
	})
	for _, c := range n.children {
		delete(t.nodes, key{c.level, c.bi, c.bj})
	}
	n.children = nil
	n.sol.SetTime(t.t)
	n.sol.RecoverPrimitives()
	return nil
}

// neighborKeys returns the same-level block coordinates adjacent to n
// across each face (with periodic wrapping), or skips faces on
// non-periodic domain boundaries.
func (t *Tree) neighborKeys(n *node) []key {
	periodic := t.prob.BC == grid.Periodic
	nbxL := t.nbx << n.level
	nbyL := t.nby << n.level
	var out []key
	addX := func(bi int) {
		if bi < 0 || bi >= nbxL {
			if !periodic {
				return
			}
			bi = (bi + nbxL) % nbxL
		}
		out = append(out, key{n.level, bi, n.bj})
	}
	addX(n.bi - 1)
	addX(n.bi + 1)
	if t.dim >= 2 {
		addY := func(bj int) {
			if bj < 0 || bj >= nbyL {
				if !periodic {
					return
				}
				bj = (bj + nbyL) % nbyL
			}
			out = append(out, key{n.level, n.bi, bj})
		}
		addY(n.bj - 1)
		addY(n.bj + 1)
	}
	return out
}

// regionMaxLevel returns the deepest leaf level inside the block region
// identified by k (which may itself be refined, exactly matched, or
// covered by a coarser leaf).
func (t *Tree) regionMaxLevel(k key) int {
	if n, ok := t.nodes[k]; ok {
		return deepest(n)
	}
	// Covered by a coarser node: walk up.
	for l, bi, bj := k.level, k.bi, k.bj; l > 0; {
		l--
		bi >>= 1
		if t.dim >= 2 {
			bj >>= 1
		}
		if n, ok := t.nodes[key{l, bi, bj}]; ok {
			return deepest(n)
		}
	}
	return 0
}

func deepest(n *node) int {
	if n.leaf() {
		return n.level
	}
	m := n.level
	for _, c := range n.children {
		if d := deepest(c); d > m {
			m = d
		}
	}
	return m
}

// regrid evaluates refinement flags, enforces 2:1 balance, refines and
// coarsens, and rebuilds the leaf cache. It reports whether the hierarchy
// changed.
func (t *Tree) regrid() bool { return t.regridWith(t.indicator) }

// regridWith is regrid with an injectable indicator: the distributed
// driver supplies allgathered per-leaf values so that every rank replica
// makes identical decisions. All structural choices (refine flags,
// balance cascade, coarsen order) are deterministic functions of the
// supplied indicator and the tree structure.
func (t *Tree) regridWith(ind func(n *node) float64) bool {
	changed := false

	// Refinement flags from the indicator.
	want := map[*node]bool{}
	for _, n := range t.leaves {
		if n.level < t.cfg.MaxLevel && ind(n) > t.cfg.RefineTol {
			want[n] = true
		}
	}
	// Refine, then cascade to preserve 2:1 balance: any leaf whose
	// neighbouring region is ≥ 2 levels deeper must refine too.
	for pass := 0; pass < t.cfg.MaxLevel+2; pass++ {
		for n := range want {
			if n.leaf() {
				if err := t.refine(n); err != nil {
					panic(err)
				}
				changed = true
			}
			delete(want, n)
		}
		t.rebuildLeaves()
		for _, n := range t.leaves {
			if n.level >= t.cfg.MaxLevel {
				continue
			}
			for _, k := range t.neighborKeys(n) {
				if t.regionMaxLevel(k) > n.level+1 {
					want[n] = true
					break
				}
			}
		}
		if len(want) == 0 {
			break
		}
	}

	// Coarsening: a parent whose children are all quiet leaves merges,
	// provided the merge keeps every neighbouring region within one
	// level of the parent. The candidates are visited in sorted order
	// (deepest level first, then block coordinates) — map iteration
	// order would make the outcome of neighbour-guard interactions
	// nondeterministic, which distributed rank replicas cannot tolerate.
	// Only children that entered the pass as leaves qualify: allowing a
	// freshly merged parent to merge again same-pass would coarsen two
	// levels at once, whose restriction stencil reaches two block-widths
	// from the surviving first child — beyond the one-block halo ring
	// the distributed driver keeps fresh. A deep cascade instead settles
	// over consecutive regrid events.
	preLeaf := map[*node]bool{}
	parentSet := map[*node]bool{}
	for _, n := range t.leaves {
		preLeaf[n] = true
		if n.parent == nil {
			continue
		}
		parentSet[n.parent] = true
	}
	parents := make([]*node, 0, len(parentSet))
	for p := range parentSet {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool {
		a, b := parents[i], parents[j]
		if a.level != b.level {
			return a.level > b.level
		}
		if a.bj != b.bj {
			return a.bj < b.bj
		}
		return a.bi < b.bi
	})
	for _, p := range parents {
		ok := true
		for _, c := range p.children {
			if !c.leaf() || !preLeaf[c] || ind(c) > t.cfg.CoarsenTol {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, k := range t.neighborKeys(p) {
			if t.regionMaxLevel(k) > p.level+1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := t.coarsen(p); err != nil {
			panic(err)
		}
		changed = true
	}
	if changed {
		t.rebuildLeaves()
	}
	return changed
}
