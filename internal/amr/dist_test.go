package amr

import (
	"testing"

	"rhsc/internal/core"
	"rhsc/internal/testprob"
)

// TestLeafNeighborSymmetry pins the property the distributed exchange
// plan is built on: the face+corner leaf-neighbour relation is symmetric
// even across refinement jumps (a coarse leaf's ring region contains
// many fine leaves, but only the ones touching it may appear).
func TestLeafNeighborSymmetry(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = 2
	for _, p := range []*testprob.Problem{testprob.Blast2D, testprob.Sod} {
		tree, err := NewTree(p, 4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		refs := tree.LeafRefs()
		idx := map[BlockRef]int{}
		for i, r := range refs {
			idx[r] = i
		}
		neigh := make([]map[int]bool, len(refs))
		for i := range refs {
			neigh[i] = map[int]bool{}
			for _, r := range tree.LeafNeighborRefs(i) {
				j, ok := idx[r]
				if !ok {
					t.Fatalf("%s: leaf %v neighbour %v is not a leaf", p.Name, refs[i], r)
				}
				if j == i {
					t.Fatalf("%s: leaf %v lists itself", p.Name, refs[i])
				}
				neigh[i][j] = true
			}
		}
		for i := range refs {
			for j := range neigh[i] {
				if !neigh[j][i] {
					t.Errorf("%s: %v has neighbour %v but not vice versa", p.Name, refs[i], refs[j])
				}
			}
		}
	}
}

// TestLeafNeighborSiblings checks the corner inclusion the coarsening
// authority depends on: every sibling of a refined block's first child —
// including the diagonal one — must be in its neighbourhood.
func TestLeafNeighborSiblings(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = 2
	tree, err := NewTree(testprob.Blast2D, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := tree.LeafRefs()
	idx := map[BlockRef]int{}
	for i, r := range refs {
		idx[r] = i
	}
	checked := 0
	for i, r := range refs {
		if r.Level == 0 || r.Bi%2 != 0 || r.Bj%2 != 0 {
			continue
		}
		// r is a first child; its three siblings share the parent.
		sibs := []BlockRef{
			{Level: r.Level, Bi: r.Bi + 1, Bj: r.Bj},
			{Level: r.Level, Bi: r.Bi, Bj: r.Bj + 1},
			{Level: r.Level, Bi: r.Bi + 1, Bj: r.Bj + 1},
		}
		neigh := map[BlockRef]bool{}
		for _, nr := range tree.LeafNeighborRefs(i) {
			neigh[nr] = true
		}
		for _, s := range sibs {
			if _, isLeaf := idx[s]; isLeaf && !neigh[s] {
				t.Errorf("first child %v misses sibling %v", r, s)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no refined first children in the bootstrap tree")
	}
}

// TestEncodeDecodeLeaves round-trips conserved and primitive data through
// the migration serialisation.
func TestEncodeDecodeLeaves(t *testing.T) {
	cfg := DefaultConfig(core.DefaultConfig())
	cfg.BlockN = 8
	cfg.MaxLevel = 1
	src, err := NewTree(testprob.Blast2D, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewTree(testprob.Blast2D, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the source so the copy is observable.
	for i := 0; i < src.NumLeaves(); i++ {
		raw := src.LeafRawU(i)
		for k := range raw {
			raw[k] *= 1.5
		}
	}
	idx := make([]int, src.NumLeaves())
	for i := range idx {
		idx[i] = i
	}
	blob, err := src.EncodeLeaves(idx)
	if err != nil {
		t.Fatal(err)
	}
	n, err := dst.DecodeLeaves(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != src.NumLeaves() {
		t.Fatalf("decoded %d leaves, want %d", n, src.NumLeaves())
	}
	for i := 0; i < src.NumLeaves(); i++ {
		a, b := src.LeafRawU(i), dst.LeafRawU(i)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("leaf %d U[%d]: %v != %v", i, k, a[k], b[k])
			}
		}
	}
	if _, err := dst.DecodeLeaves([]byte("not a gob stream")); err == nil {
		t.Error("decoded garbage without error")
	}
}
