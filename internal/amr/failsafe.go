package amr

import (
	"errors"

	"rhsc/internal/core"
	"rhsc/internal/grid"
)

// A posteriori fail-safe over the block tree (core.Config.FailSafe on
// the leaf method). Each Euler stage runs the per-leaf detector after
// the candidate update; flagged cells are repaired in place with the
// first-order flux replacement (core.Solver.FSRepair) before the stage
// sync, so by the time ghosts are refilled every leaf holds an
// admissible state. Two tree-specific pieces live here:
//
//   - Mask ghosts. A troubled cell next to a block face dirties faces
//     of the neighbouring leaf too, and the repair on both leaves must
//     see the same flags so each recomputes the shared face flux. The
//     tree fills External-face mask ghosts by OR-sampling neighbour
//     interiors at exactly the sub-points the primitive ghost fill
//     averages (sampleAvg), before any leaf repairs. At same-level
//     faces the stencils on either side then hold bitwise-identical
//     values, so the corrected flux matches and conservation stays
//     exact; coarse-fine faces inherit the tree's existing
//     no-refluxing policy (package comment).
//
//   - Stage selection. The SSP-RK2 combine is a convex combination of
//     two detector-clean states, and the admissible set (D > 0,
//     tau > 0, |S| - (tau + D + p) < 0) is convex — D and tau are
//     linear in U and the causality functional is a norm minus a
//     linear form. The combine therefore cannot leave the set and only
//     the Euler stages are detected.
//
// A run in which the detector never fires is bitwise identical to the
// plain tree step: detection only reads the candidate state, and the
// stage sync's primitive recovery re-enters c2p at the already
// converged pressures, which the Newton loop returns unchanged.

// stageFS is the fail-safe variant of the Step stage closure: Euler
// update, detect, repair, sync.
func (t *Tree) stageFS(stage int, dt float64) error {
	for _, n := range t.leaves {
		n.sol.ComputeRHS(n.rhs)
		t.zoneUpdates += int64(n.sol.G.Nx * n.sol.G.Ny)
	}
	for _, n := range t.leaves {
		n.sol.FSBegin()
	}
	for _, n := range t.leaves {
		n.sol.G.U.AXPY(dt, n.rhs)
	}
	// Same injection point core.Step offers: after the candidate update,
	// before detection, once per leaf in deterministic leaf order.
	if hook := t.cfg.Core.FaultHook; hook != nil {
		for _, n := range t.leaves {
			hook(stage, n.sol.G.U)
		}
	}
	troubled := 0
	for _, n := range t.leaves {
		troubled += n.sol.FSDetect()
	}
	if troubled > 0 {
		t.troubledCells += int64(troubled)
		if f := t.cfg.Core.FailSafeMaxFrac; f > 0 && float64(troubled) > f*float64(t.TotalZones()) {
			return &core.StateError{Stage: stage, Troubled: troubled}
		}
		t.fillMaskGhostsOf(t.leaves)
		for _, n := range t.leaves {
			if !maskAny(n.sol.FSMask()) {
				continue
			}
			if err := n.sol.FSRepair(stage, dt, 0, 1); err != nil {
				var se *core.StateError
				if errors.As(err, &se) {
					se.Troubled = troubled
				}
				return err
			}
		}
		t.repairedCells += int64(troubled)
	}
	// Detection (and repair) already recovered every leaf's primitives
	// from the candidate state, so the stage sync reduces to the ghost
	// refill. Re-running recovery here would not be bitwise neutral: a
	// cell whose stored primitives were clamped (pressure floor,
	// velocity cap) re-enters Newton from the clamped guess and lands on
	// a marginally different root than the plain path's single recovery.
	t.fillGhosts()
	return nil
}

// TroubledCells returns the cumulative cells flagged by the fail-safe
// detector over this tree's stages.
func (t *Tree) TroubledCells() int64 { return t.troubledCells }

// RepairedCells returns the cumulative cells re-updated by the local
// flux-replacement repair.
func (t *Tree) RepairedCells() int64 { return t.repairedCells }

// fillMaskGhostsOf fills External-face mask ghosts of the given leaves
// from neighbour interiors, mirroring fillGhostsOf band for band so a
// flag next to a block face is visible from both sides before repair.
func (t *Tree) fillMaskGhostsOf(ls []*node) {
	for _, n := range ls {
		g := n.sol.G
		mask := n.sol.FSMask()
		ng := g.Ng
		fill := func(i, j int) {
			mask[g.Idx(i, j, g.KBeg())] = t.sampleMask(g.X(i), g.Y(j), g.Dx, g.Dy)
		}
		if g.BCs[0][0] == grid.External {
			for j := g.JBeg(); j < g.JEnd(); j++ {
				for i := 0; i < ng; i++ {
					fill(i, j)
				}
			}
		}
		if g.BCs[0][1] == grid.External {
			for j := g.JBeg(); j < g.JEnd(); j++ {
				for i := g.IEnd(); i < g.IEnd()+ng; i++ {
					fill(i, j)
				}
			}
		}
		if t.dim >= 2 {
			if g.BCs[1][0] == grid.External {
				for j := 0; j < ng; j++ {
					for i := g.IBeg(); i < g.IEnd(); i++ {
						fill(i, j)
					}
				}
			}
			if g.BCs[1][1] == grid.External {
				for j := g.JEnd(); j < g.JEnd()+ng; j++ {
					for i := g.IBeg(); i < g.IEnd(); i++ {
						fill(i, j)
					}
				}
			}
		}
	}
}

// sampleMask ORs the troubled flags at the sub-points sampleAvg
// averages: a ghost cell is dirty if any covering fine cell (or the
// one covering coarse cell) is flagged.
func (t *Tree) sampleMask(x, y, dx, dy float64) uint8 {
	if t.dim == 1 {
		a, ia := t.locate(x-0.25*dx, y)
		b, ib := t.locate(x+0.25*dx, y)
		return a.sol.FSMask()[ia] | b.sol.FSMask()[ib]
	}
	var m uint8
	for _, fy := range [2]float64{-0.25, 0.25} {
		for _, fx := range [2]float64{-0.25, 0.25} {
			n, i := t.locate(x+fx*dx, y+fy*dy)
			m |= n.sol.FSMask()[i]
		}
	}
	return m
}

// maskAny reports whether any cell (interior or ghost) is flagged — a
// ghost flag alone still dirties local faces, so the leaf must repair.
func maskAny(m []uint8) bool {
	for _, v := range m {
		if v != 0 {
			return true
		}
	}
	return false
}

// Distribution interface (see dist.go): the split-phase version of
// stageFS a per-rank driver runs on its owned leaf subset, with the
// cross-rank mask exchange between detection and repair.

// StageAdvanceFS is StageAdvance with the fail-safe pipeline: stage
// snapshot, Euler update, fault hook, detection. It returns the number
// of interior cells flagged on the given leaves; the caller exchanges
// troubled-cell masks with the ranks owning neighbour leaves (so both
// sides of a rank-boundary face recompute the same corrected flux),
// then calls FSGhostMasks and FSRepairLeaves.
func (t *Tree) StageAdvanceFS(idx []int, stage int, dt float64) int {
	for _, i := range idx {
		n := t.leaves[i]
		n.sol.ComputeRHS(n.rhs)
		t.zoneUpdates += int64(n.sol.G.Nx * n.sol.G.Ny)
	}
	for _, i := range idx {
		t.leaves[i].sol.FSBegin()
	}
	for _, i := range idx {
		n := t.leaves[i]
		n.sol.G.U.AXPY(dt, n.rhs)
	}
	if hook := t.cfg.Core.FaultHook; hook != nil {
		for _, i := range idx {
			hook(stage, t.leaves[i].sol.G.U)
		}
	}
	troubled := 0
	for _, i := range idx {
		troubled += t.leaves[i].sol.FSDetect()
	}
	t.troubledCells += int64(troubled)
	t.fsPending += troubled
	return troubled
}

// FSGhostMasks fills the External-face mask ghosts of the given leaves.
// Mask sampling reads the interiors of face-adjacent leaves, so the
// masks of halo replicas must be current (installed via LeafFSMask)
// before the call.
func (t *Tree) FSGhostMasks(idx []int) {
	ls := t.ghostScratch[:0]
	for _, i := range idx {
		ls = append(ls, t.leaves[i])
	}
	t.ghostScratch = ls
	t.fillMaskGhostsOf(ls)
}

// FSRepairLeaves runs the local flux-replacement repair on every dirty
// leaf among idx for the given Euler stage. On success the stage's
// flagged-cell tally (from StageAdvanceFS) moves into RepairedCells;
// cells that only receive a corrected neighbour flux are not counted —
// the same accounting core.Solver uses.
func (t *Tree) FSRepairLeaves(idx []int, stage int, dt float64) error {
	for _, i := range idx {
		n := t.leaves[i]
		if !maskAny(n.sol.FSMask()) {
			continue
		}
		if err := n.sol.FSRepair(stage, dt, 0, 1); err != nil {
			t.fsPending = 0
			return err
		}
	}
	t.repairedCells += int64(t.fsPending)
	t.fsPending = 0
	return nil
}

// LeafFSMask returns the troubled-cell mask of leaf i (full grid
// layout, allocated on first use) — the distributed driver packs owned
// masks from it and installs received neighbour masks into it.
func (t *Tree) LeafFSMask(i int) []uint8 { return t.leaves[i].sol.FSMask() }
