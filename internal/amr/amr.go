// Package amr implements block-structured adaptive mesh refinement on top
// of the core HRSC solver: a quadtree (binary tree in 1-D) of fixed-size
// blocks, gradient-based refinement flags, conservative prolongation and
// restriction, 2:1 level balance, and a stage-synchronous SSP-RK2 driver
// that advances every leaf with a single global time step.
//
// Design choices (see DESIGN.md §5):
//
//   - Leaves carry the data; internal nodes are structure only.
//   - A uniform global Δt (the minimum CFL step over all leaves) is used
//     instead of level subcycling — simpler, unconditionally consistent,
//     and adequate for the efficiency experiment E9.
//   - Ghost zones of a leaf are filled by conservative point sampling of
//     the neighbouring leaves: same-level neighbours copy exactly, coarse
//     neighbours prolongate piecewise-constantly, fine neighbours are
//     averaged (restriction). Coarse-fine interfaces are not refluxed;
//     the conservation drift this causes is measured by the tests and
//     stays far below the scheme's discretisation error.
package amr

import (
	"errors"
	"fmt"
	"math"

	"rhsc/internal/core"
	"rhsc/internal/grid"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// Config selects the AMR layout and policy.
type Config struct {
	// Core is the per-leaf numerical method (Pool may be set; SweepExec
	// and HaloExchange must be nil — the tree owns ghost filling).
	Core core.Config
	// BlockN is the number of cells per block side. Must be at least
	// twice the reconstruction ghost width.
	BlockN int
	// MaxLevel is the deepest refinement level (0 = root only).
	MaxLevel int
	// RefineTol flags a block for refinement when its relative gradient
	// indicator exceeds it; CoarsenTol (< RefineTol) allows coarsening.
	RefineTol  float64
	CoarsenTol float64
	// RegridEvery re-evaluates the flags every so many steps (default 4).
	RegridEvery int
	// Attach, when non-nil, is called once for every leaf solver the tree
	// creates — at construction and again for each block born in a
	// regrid. A heterogeneous executor uses it to install its SweepExec
	// on every leaf (hetero.Executor.Attach), so strip routing survives
	// refinement: new leaves come up already routed.
	Attach func(*core.Solver)
}

// DefaultConfig returns a reasonable AMR policy over the given core
// method.
func DefaultConfig(c core.Config) Config {
	return Config{
		Core:        c,
		BlockN:      16,
		MaxLevel:    2,
		RefineTol:   0.08,
		CoarsenTol:  0.02,
		RegridEvery: 4,
	}
}

type key struct{ level, bi, bj int }

// node is one tree block; only leaves (children == nil) hold solvers.
type node struct {
	level, bi, bj int
	parent        *node
	children      []*node
	sol           *core.Solver
	rhs, u0       *state.Fields
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is the AMR hierarchy over a rectangular domain.
type Tree struct {
	cfg  Config
	prob *testprob.Problem
	dim  int
	nbx  int // root blocks along x
	nby  int // root blocks along y (1 in 1-D)

	x0, x1, y0, y1 float64

	roots  []*node
	nodes  map[key]*node
	leaves []*node

	// ghostScratch is the reusable node slice SyncSubset builds its ghost
	// set in, so the per-stage distributed sync does not allocate.
	ghostScratch []*node

	t           float64
	steps       int
	zoneUpdates int64

	// Cumulative fail-safe accounting (see failsafe.go). fsPending holds
	// the current stage's flagged-cell count between StageAdvanceFS and
	// FSRepairLeaves in the distributed split-phase flow.
	troubledCells int64
	repairedCells int64
	fsPending     int
}

// NewTree builds the hierarchy for problem p with nbx root blocks along x
// (root resolution nbx·BlockN cells), bootstraps the initial refinement,
// and fills the initial condition.
func NewTree(p *testprob.Problem, nbx int, cfg Config) (*Tree, error) {
	if cfg.BlockN < 2*cfg.Core.Recon.Ghost() {
		return nil, fmt.Errorf("amr: BlockN %d below twice the ghost width %d",
			cfg.BlockN, cfg.Core.Recon.Ghost())
	}
	if cfg.BlockN%2 != 0 {
		return nil, fmt.Errorf("amr: BlockN %d must be even for 2:1 cell alignment", cfg.BlockN)
	}
	if cfg.MaxLevel < 0 || cfg.MaxLevel > 12 {
		return nil, fmt.Errorf("amr: MaxLevel %d out of range", cfg.MaxLevel)
	}
	if cfg.RefineTol <= cfg.CoarsenTol {
		return nil, errors.New("amr: RefineTol must exceed CoarsenTol")
	}
	if cfg.RegridEvery <= 0 {
		cfg.RegridEvery = 4
	}
	if cfg.Core.SweepExec != nil || cfg.Core.HaloExchange != nil {
		return nil, errors.New("amr: core SweepExec/HaloExchange must be nil")
	}
	if cfg.Core.TileExec != nil {
		return nil, errors.New("amr: core TileExec must be nil (leaves schedule their own tiles)")
	}
	if cfg.Core.MaskExchange != nil {
		return nil, errors.New("amr: core MaskExchange must be nil (the tree fills mask ghosts)")
	}
	if nbx < 1 {
		return nil, errors.New("amr: need at least one root block")
	}
	if p.Dim > 2 {
		return nil, fmt.Errorf("amr: %d-D problems are not supported (quadtree refinement is 1-D/2-D)", p.Dim)
	}
	dim := p.Dim
	nby := rootLayout(p, nbx)
	t := &Tree{
		cfg: cfg, prob: p, dim: dim, nbx: nbx, nby: nby,
		x0: p.X0, x1: p.X1, y0: p.Y0, y1: p.Y1,
		nodes: make(map[key]*node),
	}
	for bj := 0; bj < nby; bj++ {
		for bi := 0; bi < nbx; bi++ {
			n := &node{level: 0, bi: bi, bj: bj}
			if err := t.attachSolver(n); err != nil {
				return nil, err
			}
			t.roots = append(t.roots, n)
			t.nodes[key{0, bi, bj}] = n
		}
	}
	t.rebuildLeaves()
	if err := t.initLeaves(t.leaves); err != nil {
		return nil, err
	}
	t.fillGhosts()
	// Bootstrap: regrid against the initial condition until the hierarchy
	// stabilises, re-imposing the exact initial data each round.
	for r := 0; r <= cfg.MaxLevel; r++ {
		if !t.regrid() {
			break
		}
		if err := t.initLeaves(t.leaves); err != nil {
			return nil, err
		}
		t.fillGhosts()
	}
	t.sync(true)
	return t, nil
}

// rootLayout returns the root-block row count matching the domain aspect
// ratio for nbx columns — the layout NewTree, and any rebuild claiming
// structural identity with it, must share.
func rootLayout(p *testprob.Problem, nbx int) int {
	if p.Dim < 2 {
		return 1
	}
	aspect := (p.Y1 - p.Y0) / (p.X1 - p.X0)
	nby := int(math.Round(float64(nbx) * aspect))
	if nby < 1 {
		nby = 1
	}
	return nby
}

// blockExtent returns the physical bounds of block (level, bi, bj).
func (t *Tree) blockExtent(level, bi, bj int) (x0, x1, y0, y1 float64) {
	wx := (t.x1 - t.x0) / float64(t.nbx<<level)
	x0 = t.x0 + float64(bi)*wx
	x1 = x0 + wx
	if t.dim >= 2 {
		wy := (t.y1 - t.y0) / float64(t.nby<<level)
		y0 = t.y0 + float64(bj)*wy
		y1 = y0 + wy
	} else {
		y0, y1 = t.y0, t.y1
	}
	return
}

// attachSolver allocates the grid, solver and stage storage of a leaf.
func (t *Tree) attachSolver(n *node) error {
	x0, x1, y0, y1 := t.blockExtent(n.level, n.bi, n.bj)
	geom := grid.Geometry{
		Nx: t.cfg.BlockN, Ny: 1, Nz: 1, Ng: t.cfg.Core.Recon.Ghost(),
		X0: x0, X1: x1, Y0: y0, Y1: y1,
	}
	if t.dim >= 2 {
		geom.Ny = t.cfg.BlockN
	}
	g := grid.New(geom)
	t.setLeafBCs(n, g)
	sol, err := core.New(g, t.cfg.Core)
	if err != nil {
		return err
	}
	n.sol = sol
	if t.cfg.Attach != nil {
		t.cfg.Attach(sol)
	}
	n.rhs = state.NewFields(g.NCells())
	n.u0 = state.NewFields(g.NCells())
	return nil
}

// setLeafBCs marks faces shared with other blocks External and domain
// faces with the problem BC (periodic domain faces are also External:
// they wrap to another block).
func (t *Tree) setLeafBCs(n *node, g *grid.Grid) {
	periodic := t.prob.BC == grid.Periodic
	nbxL := t.nbx << n.level
	nbyL := t.nby << n.level
	// x faces
	if n.bi > 0 || (periodic && nbxL > 1) {
		g.BCs[0][0] = grid.External
	} else {
		g.BCs[0][0] = t.prob.BC
	}
	if n.bi < nbxL-1 || (periodic && nbxL > 1) {
		g.BCs[0][1] = grid.External
	} else {
		g.BCs[0][1] = t.prob.BC
	}
	if t.dim >= 2 {
		if n.bj > 0 || (periodic && nbyL > 1) {
			g.BCs[1][0] = grid.External
		} else {
			g.BCs[1][0] = t.prob.BC
		}
		if n.bj < nbyL-1 || (periodic && nbyL > 1) {
			g.BCs[1][1] = grid.External
		} else {
			g.BCs[1][1] = t.prob.BC
		}
	}
}

// initLeaves imposes the problem's initial condition on the given leaves.
func (t *Tree) initLeaves(ls []*node) error {
	for _, n := range ls {
		if err := n.sol.InitFromPrim(t.prob.Init); err != nil {
			return err
		}
	}
	return nil
}

// rebuildLeaves refreshes the leaf cache.
func (t *Tree) rebuildLeaves() {
	t.leaves = t.leaves[:0]
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			t.leaves = append(t.leaves, n)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
}

// Time returns the solution time.
func (t *Tree) Time() float64 { return t.t }

// Problem returns the problem this tree was built for.
func (t *Tree) Problem() *testprob.Problem { return t.prob }

// NumLeaves returns the number of active blocks.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// TotalZones returns the number of active (leaf) interior zones.
func (t *Tree) TotalZones() int {
	z := 0
	for _, n := range t.leaves {
		z += n.sol.G.Nx * n.sol.G.Ny
	}
	return z
}

// ZoneUpdates returns the cumulative zones × RHS evaluations — the work
// measure of the AMR efficiency experiment.
func (t *Tree) ZoneUpdates() int64 { return t.zoneUpdates }

// MaxLevelInUse returns the deepest level currently active.
func (t *Tree) MaxLevelInUse() int {
	m := 0
	for _, n := range t.leaves {
		if n.level > m {
			m = n.level
		}
	}
	return m
}

// TotalMass sums the conserved mass over all leaves.
func (t *Tree) TotalMass() float64 {
	m := 0.0
	for _, n := range t.leaves {
		m += n.sol.G.TotalMass()
	}
	return m
}

// TotalEnergy sums the conserved energy over all leaves.
func (t *Tree) TotalEnergy() float64 {
	e := 0.0
	for _, n := range t.leaves {
		e += n.sol.G.TotalEnergy()
	}
	return e
}

// wrap maps a coordinate into the periodic domain.
func wrap(x, lo, hi float64) float64 {
	w := hi - lo
	for x < lo {
		x += w
	}
	for x >= hi {
		x -= w
	}
	return x
}

// locate returns the leaf containing physical point (x, y) and the flat
// cell index of the containing cell.
func (t *Tree) locate(x, y float64) (*node, int) {
	if t.prob.BC == grid.Periodic {
		x = wrap(x, t.x0, t.x1)
		if t.dim >= 2 {
			y = wrap(y, t.y0, t.y1)
		}
	}
	wx := (t.x1 - t.x0) / float64(t.nbx)
	bi := int((x - t.x0) / wx)
	if bi < 0 {
		bi = 0
	}
	if bi >= t.nbx {
		bi = t.nbx - 1
	}
	bj := 0
	if t.dim >= 2 {
		wy := (t.y1 - t.y0) / float64(t.nby)
		bj = int((y - t.y0) / wy)
		if bj < 0 {
			bj = 0
		}
		if bj >= t.nby {
			bj = t.nby - 1
		}
	}
	n := t.roots[bj*t.nbx+bi]
	for !n.leaf() {
		x0, x1, y0, y1 := t.blockExtent(n.level, n.bi, n.bj)
		cx := 0
		if x >= 0.5*(x0+x1) {
			cx = 1
		}
		if t.dim == 1 {
			n = n.children[cx]
			continue
		}
		cy := 0
		if y >= 0.5*(y0+y1) {
			cy = 1
		}
		n = n.children[cy*2+cx]
	}
	g := n.sol.G
	i := g.IBeg() + int((x-g.X0)/g.Dx)
	if i < g.IBeg() {
		i = g.IBeg()
	}
	if i >= g.IEnd() {
		i = g.IEnd() - 1
	}
	j := g.JBeg()
	if t.dim >= 2 {
		j = g.JBeg() + int((y-g.Y0)/g.Dy)
		if j < g.JBeg() {
			j = g.JBeg()
		}
		if j >= g.JEnd() {
			j = g.JEnd() - 1
		}
	}
	return n, g.Idx(i, j, g.KBeg())
}

// SampleAt returns the primitive state at a physical point, resolved on
// the finest covering leaf.
func (t *Tree) SampleAt(x, y float64) state.Prim {
	n, idx := t.locate(x, y)
	return n.sol.G.W.GetPrim(idx)
}

// sampleAvg averages the primitives over the sub-points of a ghost cell
// centred at (x, y) with sizes (dx, dy): one point per potential finer
// cell, which makes the fill exact for same-level and coarse neighbours
// and a conservative restriction for fine ones.
func (t *Tree) sampleAvg(x, y, dx, dy float64) state.Prim {
	if t.dim == 1 {
		a, ia := t.locate(x-0.25*dx, y)
		b, ib := t.locate(x+0.25*dx, y)
		pa := a.sol.G.W.GetPrim(ia)
		pb := b.sol.G.W.GetPrim(ib)
		return avgPrim(pa, pb)
	}
	var ps [4]state.Prim
	c := 0
	for _, fy := range [2]float64{-0.25, 0.25} {
		for _, fx := range [2]float64{-0.25, 0.25} {
			n, i := t.locate(x+fx*dx, y+fy*dy)
			ps[c] = n.sol.G.W.GetPrim(i)
			c++
		}
	}
	return avgPrim(avgPrim(ps[0], ps[1]), avgPrim(ps[2], ps[3]))
}

func avgPrim(a, b state.Prim) state.Prim {
	return state.Prim{
		Rho: 0.5 * (a.Rho + b.Rho),
		Vx:  0.5 * (a.Vx + b.Vx),
		Vy:  0.5 * (a.Vy + b.Vy),
		Vz:  0.5 * (a.Vz + b.Vz),
		P:   0.5 * (a.P + b.P),
	}
}

// fillGhosts fills the External-face ghost zones of every leaf from the
// current leaf data.
func (t *Tree) fillGhosts() { t.fillGhostsOf(t.leaves) }

// fillGhostsOf fills the External-face ghost zones of the given leaves.
// Sampling only reads the interiors of face-adjacent leaves (the ghost
// band is at most half a block wide at any admissible BlockN), which is
// what lets the distributed driver fill ghosts of locally owned blocks
// from a halo of neighbour copies.
func (t *Tree) fillGhostsOf(ls []*node) {
	for _, n := range ls {
		g := n.sol.G
		ng := g.Ng
		fill := func(i, j int) {
			p := t.sampleAvg(g.X(i), g.Y(j), g.Dx, g.Dy)
			g.W.SetPrim(g.Idx(i, j, g.KBeg()), p)
		}
		if g.BCs[0][0] == grid.External {
			for j := g.JBeg(); j < g.JEnd(); j++ {
				for i := 0; i < ng; i++ {
					fill(i, j)
				}
			}
		}
		if g.BCs[0][1] == grid.External {
			for j := g.JBeg(); j < g.JEnd(); j++ {
				for i := g.IEnd(); i < g.IEnd()+ng; i++ {
					fill(i, j)
				}
			}
		}
		if t.dim >= 2 {
			if g.BCs[1][0] == grid.External {
				for j := 0; j < ng; j++ {
					for i := g.IBeg(); i < g.IEnd(); i++ {
						fill(i, j)
					}
				}
			}
			if g.BCs[1][1] == grid.External {
				for j := g.JEnd(); j < g.JEnd()+ng; j++ {
					for i := g.IBeg(); i < g.IEnd(); i++ {
						fill(i, j)
					}
				}
			}
		}
	}
}

// sync re-establishes the invariant: every leaf's primitives (interior,
// physical ghosts, and External ghosts) reflect its conserved state. When
// accum is set each leaf's recovery also folds the CFL reduction into the
// same pass (core.Solver.AccumulateCFLNext), so the next MaxDt over the
// tree is a cheap per-leaf combine. Arm only syncs whose recovered state
// is the one MaxDt will be asked about — the final sync of a step, not
// the stage syncs.
func (t *Tree) sync(accum bool) {
	for _, n := range t.leaves {
		if accum {
			n.sol.AccumulateCFLNext()
		}
		n.sol.RecoverPrimitives()
	}
	t.fillGhosts()
}

// MaxDt returns the global CFL step: the minimum over all leaves.
func (t *Tree) MaxDt() float64 {
	dt := math.Inf(1)
	for _, n := range t.leaves {
		if d := n.sol.MaxDt(); d < dt {
			dt = d
		}
	}
	return dt
}

// Step advances every leaf by dt with stage-synchronous SSP RK2.
func (t *Tree) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("amr: non-positive dt %v", dt)
	}
	stage := func(num int) error {
		if t.cfg.Core.FailSafe {
			return t.stageFS(num, dt)
		}
		for _, n := range t.leaves {
			n.sol.ComputeRHS(n.rhs)
			t.zoneUpdates += int64(n.sol.G.Nx * n.sol.G.Ny)
		}
		for _, n := range t.leaves {
			n.sol.G.U.AXPY(dt, n.rhs)
		}
		t.sync(false)
		return nil
	}
	for _, n := range t.leaves {
		n.u0.CopyFrom(n.sol.G.U)
	}
	if err := stage(1); err != nil {
		return err
	}
	if err := stage(2); err != nil {
		return err
	}
	// The combine is a convex combination of two detector-clean states
	// and the admissible set is convex, so it needs no detection (see
	// failsafe.go).
	for _, n := range t.leaves {
		n.sol.G.U.LinComb2(0.5, n.u0, 0.5, n.sol.G.U)
	}
	t.sync(true)

	t.t += dt
	t.steps++
	if t.steps%t.cfg.RegridEvery == 0 {
		t.regrid()
		t.sync(true)
	}
	return nil
}

// Advance integrates to tEnd with CFL-limited steps.
func (t *Tree) Advance(tEnd float64) (int, error) {
	steps := 0
	for t.t < tEnd-1e-14 {
		dt := t.MaxDt()
		if t.t+dt > tEnd {
			dt = tEnd - t.t
		}
		if err := t.Step(dt); err != nil {
			return steps, err
		}
		steps++
		if steps > 1_000_000 {
			return steps, errors.New("amr: step budget exhausted")
		}
	}
	return steps, nil
}
