package amr

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"rhsc/internal/grid"
)

// This file is the distribution interface of the tree: the minimal set of
// exported, leaf-indexed operations package damr needs to run one Tree
// replica per rank in lockstep. Leaves are addressed by their index into
// the current leaf ordering (deterministic depth-first traversal); the
// ordering — and therefore every index — is invalidated by a regrid, so
// callers re-enumerate via LeafRefs after RegridWithIndicators reports a
// change.

// BlockRef identifies a block by refinement level and block coordinates.
// It is stable across processes and regrids (unlike leaf indices).
type BlockRef struct {
	Level, Bi, Bj int
}

// Parent returns the ref of the containing block one level up.
func (r BlockRef) Parent(dim int) BlockRef {
	p := BlockRef{Level: r.Level - 1, Bi: r.Bi >> 1, Bj: r.Bj}
	if dim >= 2 {
		p.Bj = r.Bj >> 1
	}
	return p
}

// FirstChild returns the ref of the Morton-first (lower-left) child.
func (r BlockRef) FirstChild(dim int) BlockRef {
	c := BlockRef{Level: r.Level + 1, Bi: r.Bi << 1, Bj: r.Bj}
	if dim >= 2 {
		c.Bj = r.Bj << 1
	}
	return c
}

// Dim returns the dimensionality of the tree's problem (1 or 2).
func (t *Tree) Dim() int { return t.dim }

// RootBlocks returns the root-level block counts along x and y.
func (t *Tree) RootBlocks() (nbx, nby int) { return t.nbx, t.nby }

// RegridEvery returns the configured regrid cadence.
func (t *Tree) RegridEvery() int { return t.cfg.RegridEvery }

// Steps returns the number of completed time steps.
func (t *Tree) Steps() int { return t.steps }

// LeafRefs returns the refs of the current leaves, aligned with the leaf
// indices every other method in this file accepts.
func (t *Tree) LeafRefs() []BlockRef {
	refs := make([]BlockRef, len(t.leaves))
	for i, n := range t.leaves {
		refs[i] = BlockRef{Level: n.level, Bi: n.bi, Bj: n.bj}
	}
	return refs
}

// LeafZones returns the number of interior zones of leaf i.
func (t *Tree) LeafZones(i int) int {
	g := t.leaves[i].sol.G
	return g.Nx * g.Ny
}

// LeafRawU returns the raw conserved storage of leaf i (interior and
// ghosts, component-major). The slice aliases the live solver state: a
// distributed driver overwrites it wholesale when installing a received
// halo copy, and reads it when packing one.
func (t *Tree) LeafRawU(i int) []float64 { return t.leaves[i].sol.G.U.Raw() }

// LeafIndicator returns the refinement indicator of leaf i. It reads the
// leaf's interior and one ghost layer, so ghosts must be current.
func (t *Tree) LeafIndicator(i int) float64 { return t.indicator(t.leaves[i]) }

// LeafNeighborRefs returns the refs of every leaf overlapping the
// one-block ring (faces and corners) around leaf i, excluding i itself.
// Corners are included deliberately: ghost sampling only reads face
// neighbours, but conservative restriction during coarsening reads all
// sibling blocks of a parent, and the diagonal sibling is a corner
// neighbour of the Morton-first child.
func (t *Tree) LeafNeighborRefs(i int) []BlockRef {
	n := t.leaves[i]
	periodic := t.prob.BC == grid.Periodic
	nbxL := t.nbx << n.level
	nbyL := t.nby << n.level
	seen := map[BlockRef]bool{}
	var out []BlockRef
	// add collects the leaves covering ring region k that actually touch
	// leaf n. A leaf coarser than (or equal to) the ring region touches n
	// because the whole region does; a finer descendant touches n only if
	// it reaches the region's edge facing n (di, dj say which edge) —
	// without this filter a coarse leaf would claim every fine leaf
	// buried inside its neighbouring region, and the relation would stop
	// being symmetric, which the distributed exchange plan relies on.
	add := func(k key, di, dj int) {
		for _, m := range t.coveringLeaves(k) {
			if m == n || m.level > k.level && !touchesEdge(m, k, di, dj, t.dim) {
				continue
			}
			r := BlockRef{Level: m.level, Bi: m.bi, Bj: m.bj}
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	djs := []int{0}
	if t.dim >= 2 {
		djs = []int{-1, 0, 1}
	}
	for _, dj := range djs {
		for di := -1; di <= 1; di++ {
			if di == 0 && dj == 0 {
				continue
			}
			bi, bj := n.bi+di, n.bj+dj
			if bi < 0 || bi >= nbxL {
				if !periodic {
					continue
				}
				bi = (bi + nbxL) % nbxL
			}
			if bj < 0 || bj >= nbyL {
				if !periodic {
					continue
				}
				bj = (bj + nbyL) % nbyL
			}
			add(key{n.level, bi, bj}, di, dj)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Level != y.Level {
			return x.Level < y.Level
		}
		if x.Bj != y.Bj {
			return x.Bj < y.Bj
		}
		return x.Bi < y.Bi
	})
	return out
}

// touchesEdge reports whether block m (a strict descendant of region k)
// reaches the edge of k adjacent to the leaf the ring was built around:
// the +x edge when di < 0 (k lies to the left of the leaf), the −x edge
// when di > 0, and likewise in y; a zero offset puts no constraint on
// that axis. A diagonal offset demands both, shrinking the match to the
// corner-touching descendant.
func touchesEdge(m *node, k key, di, dj, dim int) bool {
	shift := uint(m.level - k.level)
	x0 := k.bi << shift
	x1 := (k.bi + 1) << shift
	switch {
	case di < 0 && m.bi+1 != x1:
		return false
	case di > 0 && m.bi != x0:
		return false
	}
	if dim >= 2 {
		y0 := k.bj << shift
		y1 := (k.bj + 1) << shift
		switch {
		case dj < 0 && m.bj+1 != y1:
			return false
		case dj > 0 && m.bj != y0:
			return false
		}
	}
	return true
}

// coveringLeaves returns the leaves covering the block region k: the leaf
// descendants of the node at k, or the coarser leaf containing k.
func (t *Tree) coveringLeaves(k key) []*node {
	if n, ok := t.nodes[k]; ok {
		var out []*node
		var walk func(m *node)
		walk = func(m *node) {
			if m.leaf() {
				out = append(out, m)
				return
			}
			for _, c := range m.children {
				walk(c)
			}
		}
		walk(n)
		return out
	}
	for l, bi, bj := k.level, k.bi, k.bj; l > 0; {
		l--
		bi >>= 1
		if t.dim >= 2 {
			bj >>= 1
		}
		if n, ok := t.nodes[key{l, bi, bj}]; ok {
			if n.leaf() {
				return []*node{n}
			}
			// The region is covered by a refined ancestor but the exact
			// key is absent — structurally impossible on a consistent
			// tree.
			panic(fmt.Sprintf("amr: region L%d (%d,%d) under refined non-leaf", k.level, k.bi, k.bj))
		}
	}
	return nil
}

// BeginStep snapshots the conserved state of the given leaves into their
// RK stage-zero storage (the first half of Tree.Step, restricted to a
// leaf subset).
func (t *Tree) BeginStep(idx []int) {
	for _, i := range idx {
		n := t.leaves[i]
		n.u0.CopyFrom(n.sol.G.U)
	}
}

// StageAdvance evaluates the RHS of the given leaves and applies the
// Euler update u += dt·L(u), accounting the zone updates. Ghosts must be
// current; the caller re-synchronises afterwards.
func (t *Tree) StageAdvance(idx []int, dt float64) {
	for _, i := range idx {
		n := t.leaves[i]
		n.sol.ComputeRHS(n.rhs)
		t.zoneUpdates += int64(n.sol.G.Nx * n.sol.G.Ny)
	}
	for _, i := range idx {
		n := t.leaves[i]
		n.sol.G.U.AXPY(dt, n.rhs)
	}
}

// CombineStage applies the SSP-RK2 combination u ← ½u⁰ + ½u to the given
// leaves.
func (t *Tree) CombineStage(idx []int) {
	for _, i := range idx {
		n := t.leaves[i]
		n.sol.G.U.LinComb2(0.5, n.u0, 0.5, n.sol.G.U)
	}
}

// SyncSubset recovers primitives on the `recover` leaves and refills the
// External ghosts of the `ghosts` leaves. The ghost fill of a leaf reads
// the recovered interiors of its neighbours, so `recover` must cover the
// neighbourhood of every leaf in `ghosts`.
func (t *Tree) SyncSubset(recover, ghosts []int) {
	for _, i := range recover {
		t.leaves[i].sol.RecoverPrimitives()
	}
	ls := t.ghostScratch[:0]
	for _, i := range ghosts {
		ls = append(ls, t.leaves[i])
	}
	t.ghostScratch = ls
	t.fillGhostsOf(ls)
}

// ArmCFL arms the next primitive recovery of the given leaves to fold the
// CFL reduction into its pass (core.Solver.AccumulateCFLNext). Distributed
// drivers arm their owned leaves before the final SyncSubset of a step so
// the following MaxDtOf is a cheap per-leaf combine.
func (t *Tree) ArmCFL(idx []int) {
	for _, i := range idx {
		t.leaves[i].sol.AccumulateCFLNext()
	}
}

// SyncAll re-establishes the full primitive/ghost invariant on every leaf
// (exported for drivers that bulk-install conserved data).
func (t *Tree) SyncAll() { t.sync(true) }

// MaxDtOf returns the CFL step minimised over the given leaves (+Inf for
// an empty set, ready for an all-reduce).
func (t *Tree) MaxDtOf(idx []int) float64 {
	dt := math.Inf(1)
	for _, i := range idx {
		if d := t.leaves[i].sol.MaxDt(); d < dt {
			dt = d
		}
	}
	return dt
}

// AdvanceTime moves the solution clock forward one step of size dt. The
// caller is responsible for having advanced every leaf consistently.
func (t *Tree) AdvanceTime(dt float64) {
	t.t += dt
	t.steps++
}

// RegridWithIndicators runs the regrid cycle with externally supplied
// per-leaf indicator values (keyed by ref; typically allgathered from the
// owning ranks). Leaves created during the cycle itself fall back to the
// locally computed indicator, which is exactly 1 for any freshly built
// block (its External ghosts are still zero), on every rank alike — so
// the outcome is identical across replicas regardless of which leaf data
// is locally fresh. It reports whether the hierarchy changed.
func (t *Tree) RegridWithIndicators(vals map[BlockRef]float64) bool {
	return t.regridWith(func(n *node) float64 {
		if v, ok := vals[BlockRef{Level: n.level, Bi: n.bi, Bj: n.bj}]; ok {
			return v
		}
		return t.indicator(n)
	})
}

// EncodeLeaves gob-serialises the identified leaves' conserved state and
// primitives using the checkpoint machinery (the leafRecord layout Save
// writes, plus the W field), for block migration between ranks. The
// primitives travel along because they seed the next con2prim Newton
// iteration: without them a migrated replica would recover from a
// different guess and drift off the owner's bit pattern.
func (t *Tree) EncodeLeaves(idx []int) ([]byte, error) {
	var buf bytes.Buffer
	if err := t.EncodeLeavesInto(idx, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeLeavesInto is EncodeLeaves writing into a caller-owned buffer
// (appended to, not reset), so steady senders can reuse one buffer across
// generations. The records alias the live U/W storage — gob serialises
// them synchronously and retains nothing — so no per-leaf copies are made.
func (t *Tree) EncodeLeavesInto(idx []int, buf *bytes.Buffer) error {
	recs := make([]leafRecord, 0, len(idx))
	for _, i := range idx {
		n := t.leaves[i]
		recs = append(recs, leafRecord{
			Level: n.level, Bi: n.bi, Bj: n.bj,
			U: n.sol.G.U.Raw(),
			W: n.sol.G.W.Raw(),
		})
	}
	if err := gob.NewEncoder(buf).Encode(recs); err != nil {
		return fmt.Errorf("amr: encode leaves: %w", err)
	}
	return nil
}

// DecodeLeaves installs a blob produced by EncodeLeaves into the matching
// leaves of this tree and returns how many blocks it carried. The tree
// structure must already contain every encoded leaf.
func (t *Tree) DecodeLeaves(data []byte) (int, error) {
	var recs []leafRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return 0, fmt.Errorf("amr: decode leaves: %w", err)
	}
	for _, rec := range recs {
		n, ok := t.nodes[key{rec.Level, rec.Bi, rec.Bj}]
		if !ok || !n.leaf() {
			return 0, fmt.Errorf("amr: migrated leaf L%d (%d,%d) not a leaf here", rec.Level, rec.Bi, rec.Bj)
		}
		raw := n.sol.G.U.Raw()
		if len(rec.U) != len(raw) {
			return 0, fmt.Errorf("amr: migrated leaf data size %d, grid needs %d", len(rec.U), len(raw))
		}
		copy(raw, rec.U)
		if rec.W != nil {
			if len(rec.W) != len(raw) {
				return 0, fmt.Errorf("amr: migrated leaf prim size %d, grid needs %d", len(rec.W), len(raw))
			}
			copy(n.sol.G.W.Raw(), rec.W)
		}
		// The raw install bypassed the solver's recovery bookkeeping; a
		// cached CFL reduction would reflect the overwritten state.
		n.sol.InvalidateCFL()
	}
	return len(recs), nil
}
