package amr

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"rhsc/internal/core"
	"rhsc/internal/testprob"
)

// leafRecord is one leaf's identity and conserved data in a checkpoint.
// W is only populated by the block-migration path (see EncodeLeaves):
// primitive recovery seeds its Newton iteration with the previous
// pressure, so a migrated replica must inherit the owner's primitives to
// continue bit-identically. Checkpoints leave W nil and re-recover on
// load; gob tolerates the absent field in either direction.
type leafRecord struct {
	Level, Bi, Bj int
	U             []float64
	W             []float64
}

// treeCheckpoint is the gob payload of a hierarchy snapshot.
type treeCheckpoint struct {
	Problem     string
	BlockN      int
	MaxLevel    int
	RefineTol   float64
	CoarsenTol  float64
	RegridEvery int
	Nbx, Nby    int
	Time        float64
	Steps       int
	ZoneUpdates int64
	Leaves      []leafRecord
}

// Save serialises the tree structure and every leaf's conserved state.
func (t *Tree) Save(w io.Writer) error {
	cp := treeCheckpoint{
		Problem:     t.prob.Name,
		BlockN:      t.cfg.BlockN,
		MaxLevel:    t.cfg.MaxLevel,
		RefineTol:   t.cfg.RefineTol,
		CoarsenTol:  t.cfg.CoarsenTol,
		RegridEvery: t.cfg.RegridEvery,
		Nbx:         t.nbx,
		Nby:         t.nby,
		Time:        t.t,
		Steps:       t.steps,
		ZoneUpdates: t.zoneUpdates,
	}
	for _, n := range t.leaves {
		raw := n.sol.G.U.Raw()
		rec := leafRecord{Level: n.level, Bi: n.bi, Bj: n.bj,
			U: append([]float64(nil), raw...)}
		cp.Leaves = append(cp.Leaves, rec)
	}
	return gob.NewEncoder(w).Encode(&cp)
}

// Load rebuilds a tree from a checkpoint. The problem must match the one
// the checkpoint was written from; the numerical method comes from core
// (which must produce the same ghost width the checkpoint's blocks were
// sized for).
func Load(r io.Reader, coreCfg core.Config) (*Tree, error) {
	var cp treeCheckpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("amr: decode checkpoint: %w", err)
	}
	p, err := testprob.ByName(cp.Problem)
	if err != nil {
		return nil, fmt.Errorf("amr: checkpoint problem: %w", err)
	}
	cfg := Config{
		Core:        coreCfg,
		BlockN:      cp.BlockN,
		MaxLevel:    cp.MaxLevel,
		RefineTol:   cp.RefineTol,
		CoarsenTol:  cp.CoarsenTol,
		RegridEvery: cp.RegridEvery,
	}
	// Build a fresh level-0 hierarchy without bootstrapping refinement:
	// replicate NewTree's construction manually.
	t := &Tree{
		cfg: cfg, prob: p, dim: p.Dim, nbx: cp.Nbx, nby: cp.Nby,
		x0: p.X0, x1: p.X1, y0: p.Y0, y1: p.Y1,
		nodes: make(map[key]*node),
	}
	if t.dim > 2 {
		return nil, fmt.Errorf("amr: checkpointed problem is %d-D", t.dim)
	}
	for bj := 0; bj < cp.Nby; bj++ {
		for bi := 0; bi < cp.Nbx; bi++ {
			n := &node{level: 0, bi: bi, bj: bj}
			if err := t.attachSolver(n); err != nil {
				return nil, err
			}
			t.roots = append(t.roots, n)
			t.nodes[key{0, bi, bj}] = n
		}
	}

	// Recreate the refinement structure: refine ancestors level by level.
	recs := append([]leafRecord(nil), cp.Leaves...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Level < recs[j].Level })
	for _, rec := range recs {
		// Walk down from the containing root, refining as needed.
		for lvl := 0; lvl < rec.Level; lvl++ {
			shift := rec.Level - lvl
			bi := rec.Bi >> shift
			bj := rec.Bj
			if t.dim >= 2 {
				bj = rec.Bj >> shift
			}
			anc, ok := t.nodes[key{lvl, bi, bj}]
			if !ok {
				return nil, fmt.Errorf("amr: checkpoint structure broken at L%d (%d,%d)", lvl, bi, bj)
			}
			if anc.leaf() {
				if err := t.refine(anc); err != nil {
					return nil, err
				}
			}
		}
	}
	t.rebuildLeaves()

	// Install the leaf data.
	installed := 0
	for _, rec := range recs {
		n, ok := t.nodes[key{rec.Level, rec.Bi, rec.Bj}]
		if !ok || !n.leaf() {
			return nil, fmt.Errorf("amr: checkpoint leaf L%d (%d,%d) missing after rebuild",
				rec.Level, rec.Bi, rec.Bj)
		}
		raw := n.sol.G.U.Raw()
		if len(rec.U) != len(raw) {
			return nil, fmt.Errorf("amr: leaf data size %d, grid needs %d", len(rec.U), len(raw))
		}
		copy(raw, rec.U)
		n.sol.SetTime(cp.Time)
		installed++
	}
	if installed != len(t.leaves) {
		return nil, fmt.Errorf("amr: checkpoint carries %d leaves, tree rebuilt %d",
			installed, len(t.leaves))
	}
	t.t = cp.Time
	t.steps = cp.Steps
	t.zoneUpdates = cp.ZoneUpdates
	t.sync()
	return t, nil
}
