package amr

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"rhsc/internal/core"
	"rhsc/internal/durable"
	"rhsc/internal/output"
	"rhsc/internal/testprob"
)

// leafRecord is one leaf's identity and conserved data in a checkpoint.
// W is only populated by the block-migration path (see EncodeLeaves):
// primitive recovery seeds its Newton iteration with the previous
// pressure, so a migrated replica must inherit the owner's primitives to
// continue bit-identically. Checkpoints leave W nil and re-recover on
// load; gob tolerates the absent field in either direction.
type leafRecord struct {
	Level, Bi, Bj int
	U             []float64
	W             []float64
}

// treeCheckpoint is the gob payload of a hierarchy snapshot.
type treeCheckpoint struct {
	Problem     string
	BlockN      int
	MaxLevel    int
	RefineTol   float64
	CoarsenTol  float64
	RegridEvery int
	Nbx, Nby    int
	Time        float64
	Steps       int
	ZoneUpdates int64
	Leaves      []leafRecord
}

// Save serialises the tree structure and every leaf's conserved state.
// Loads from it re-recover primitives, so a restarted run is accurate
// but not bit-identical; use SaveExact when exact continuation matters.
func (t *Tree) Save(w io.Writer) error { return t.save(w, false) }

// SaveExact serialises the tree structure plus every leaf's conserved
// AND primitive fields (including ghosts), so Load continues the run
// bit-identically — the property checkpoint-based preemption relies on.
func (t *Tree) SaveExact(w io.Writer) error { return t.save(w, true) }

func (t *Tree) save(w io.Writer, prims bool) error {
	cp := treeCheckpoint{
		Problem:     t.prob.Name,
		BlockN:      t.cfg.BlockN,
		MaxLevel:    t.cfg.MaxLevel,
		RefineTol:   t.cfg.RefineTol,
		CoarsenTol:  t.cfg.CoarsenTol,
		RegridEvery: t.cfg.RegridEvery,
		Nbx:         t.nbx,
		Nby:         t.nby,
		Time:        t.t,
		Steps:       t.steps,
		ZoneUpdates: t.zoneUpdates,
	}
	for _, n := range t.leaves {
		raw := n.sol.G.U.Raw()
		rec := leafRecord{Level: n.level, Bi: n.bi, Bj: n.bj,
			U: append([]float64(nil), raw...)}
		if prims {
			rec.W = append([]float64(nil), n.sol.G.W.Raw()...)
		}
		cp.Leaves = append(cp.Leaves, rec)
	}
	// Frame the payload (per-chunk CRC32C + sealed footer) so torn
	// writes and bit rot surface as ErrCheckpointCorrupt at load time.
	fw := durable.NewWriter(w)
	if err := gob.NewEncoder(fw).Encode(&cp); err != nil {
		return err
	}
	return fw.Seal()
}

// Load rebuilds a tree from a checkpoint. The problem must match the one
// the checkpoint was written from; the numerical method comes from core
// (which must produce the same ghost width the checkpoint's blocks were
// sized for).
//
// Failures are classified with the output package's checkpoint error
// taxonomy: an undecodable payload wraps output.ErrCheckpointCorrupt;
// a decodable payload whose problem, structure or block shapes do not
// fit wraps output.ErrCheckpointMismatch. The serving layer uses this
// to distinguish fatal resume failures from transient I/O.
func Load(r io.Reader, coreCfg core.Config) (*Tree, error) {
	payload, framed, err := durable.Sniff(r)
	if err != nil {
		return nil, err
	}
	var cp treeCheckpoint
	if err := gob.NewDecoder(payload).Decode(&cp); err != nil {
		return nil, output.CorruptError("amr: decode checkpoint", err)
	}
	if framed != nil {
		// gob may leave the frame tail unread; Verify rules out a torn
		// tail masquerading as a clean load.
		if err := framed.Verify(); err != nil {
			return nil, output.CorruptError("amr: verify checkpoint frame", err)
		}
	}
	p, err := testprob.ByName(cp.Problem)
	if err != nil {
		return nil, output.MismatchError("amr: checkpoint problem", err)
	}
	cfg := Config{
		Core:        coreCfg,
		BlockN:      cp.BlockN,
		MaxLevel:    cp.MaxLevel,
		RefineTol:   cp.RefineTol,
		CoarsenTol:  cp.CoarsenTol,
		RegridEvery: cp.RegridEvery,
	}
	if cp.BlockN < 2*coreCfg.Recon.Ghost() || cp.Nbx < 1 || cp.Nby < 1 {
		return nil, output.MismatchError("amr: checkpoint layout",
			fmt.Errorf("block size %d (ghost %d), roots %dx%d",
				cp.BlockN, coreCfg.Recon.Ghost(), cp.Nbx, cp.Nby))
	}
	t, err := newSkeleton(p, cfg, cp.Nbx, cp.Nby)
	if err != nil {
		return nil, err
	}
	if err := t.installRecords(cp.Leaves, cp.Time); err != nil {
		return nil, output.MismatchError("amr: checkpoint structure", err)
	}
	t.t = cp.Time
	t.steps = cp.Steps
	t.zoneUpdates = cp.ZoneUpdates
	// An exact checkpoint (SaveExact) carries every leaf's primitives, so
	// the state is already consistent and re-recovery would only reseed
	// the Newton guesses away from the uninterrupted trajectory. Plain
	// checkpoints carry none: re-recover. (Mixed records never occur —
	// save writes all or none — but any W-less leaf forces the safe path.)
	exact := len(cp.Leaves) > 0
	for _, rec := range cp.Leaves {
		if rec.W == nil {
			exact = false
			break
		}
	}
	if !exact {
		t.sync(true)
	}
	return t, nil
}

// BlockSize returns the cells per block side the tree was built with.
func (t *Tree) BlockSize() int { return t.cfg.BlockN }

// Fingerprint hashes the complete hierarchy state — step and time
// counters plus every leaf's identity, conserved and primitive raw
// fields (ghosts included) — into a 64-bit FNV-1a digest. Two trees
// with equal fingerprints evolved through the same code are bitwise
// interchangeable; the preemption tests use this to pin
// checkpoint→park→resume round trips to uninterrupted runs.
func (t *Tree) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(t.steps))
	put(math.Float64bits(t.t))
	leaves := append([]*node(nil), t.leaves...)
	sort.Slice(leaves, func(i, j int) bool {
		a, b := leaves[i], leaves[j]
		if a.level != b.level {
			return a.level < b.level
		}
		if a.bj != b.bj {
			return a.bj < b.bj
		}
		return a.bi < b.bi
	})
	for _, n := range leaves {
		put(uint64(n.level))
		put(uint64(n.bi))
		put(uint64(n.bj))
		for _, v := range n.sol.G.U.Raw() {
			put(math.Float64bits(v))
		}
		for _, v := range n.sol.G.W.Raw() {
			put(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// newSkeleton builds a level-0 hierarchy without bootstrap refinement:
// NewTree's construction minus the initial condition and regrid rounds.
func newSkeleton(p *testprob.Problem, cfg Config, nbx, nby int) (*Tree, error) {
	if p.Dim > 2 {
		return nil, fmt.Errorf("amr: checkpointed problem is %d-D", p.Dim)
	}
	t := &Tree{
		cfg: cfg, prob: p, dim: p.Dim, nbx: nbx, nby: nby,
		x0: p.X0, x1: p.X1, y0: p.Y0, y1: p.Y1,
		nodes: make(map[key]*node),
	}
	for bj := 0; bj < nby; bj++ {
		for bi := 0; bi < nbx; bi++ {
			n := &node{level: 0, bi: bi, bj: bj}
			if err := t.attachSolver(n); err != nil {
				return nil, err
			}
			t.roots = append(t.roots, n)
			t.nodes[key{0, bi, bj}] = n
		}
	}
	return t, nil
}

// installRecords recreates the refinement structure implied by the
// records (refining ancestors level by level) and installs each record's
// data: U always, W when the record carries primitives. Together the
// records must cover every leaf of one consistent snapshot.
func (t *Tree) installRecords(recs []leafRecord, time float64) error {
	recs = append([]leafRecord(nil), recs...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Level < recs[j].Level })
	for _, rec := range recs {
		// Walk down from the containing root, refining as needed.
		for lvl := 0; lvl < rec.Level; lvl++ {
			shift := rec.Level - lvl
			bi := rec.Bi >> shift
			bj := rec.Bj
			if t.dim >= 2 {
				bj = rec.Bj >> shift
			}
			anc, ok := t.nodes[key{lvl, bi, bj}]
			if !ok {
				return fmt.Errorf("amr: checkpoint structure broken at L%d (%d,%d)", lvl, bi, bj)
			}
			if anc.leaf() {
				if err := t.refine(anc); err != nil {
					return err
				}
			}
		}
	}
	t.rebuildLeaves()

	installed := 0
	for _, rec := range recs {
		n, ok := t.nodes[key{rec.Level, rec.Bi, rec.Bj}]
		if !ok || !n.leaf() {
			return fmt.Errorf("amr: checkpoint leaf L%d (%d,%d) missing after rebuild",
				rec.Level, rec.Bi, rec.Bj)
		}
		raw := n.sol.G.U.Raw()
		if len(rec.U) != len(raw) {
			return fmt.Errorf("amr: leaf data size %d, grid needs %d", len(rec.U), len(raw))
		}
		copy(raw, rec.U)
		if rec.W != nil {
			if len(rec.W) != len(raw) {
				return fmt.Errorf("amr: leaf prim size %d, grid needs %d", len(rec.W), len(raw))
			}
			copy(n.sol.G.W.Raw(), rec.W)
		}
		n.sol.SetTime(time)
		// Direct writes to U/W bypass the solver's recovery bookkeeping;
		// drop any cached CFL reduction so MaxDt re-traverses.
		n.sol.InvalidateCFL()
		installed++
	}
	if installed != len(t.leaves) {
		return fmt.Errorf("amr: records carry %d leaves, tree rebuilt %d",
			installed, len(t.leaves))
	}
	return nil
}

// TreeFromLeafBlobs rebuilds a hierarchy from EncodeLeaves blobs that
// together cover every leaf of one consistent snapshot. Unlike Load it
// restores both conserved and primitive fields (including ghosts)
// bit-exactly and performs no re-recovery, so a restored run continues
// bit-identically to the run the blobs were taken from — the property
// the damr rank-failure recovery relies on. The problem, root block
// count and config must match the tree the blobs were encoded from.
func TreeFromLeafBlobs(p *testprob.Problem, nbx int, cfg Config,
	blobs [][]byte, time float64, steps int, zoneUpdates int64) (*Tree, error) {

	var recs []leafRecord
	for i, b := range blobs {
		// Buddy-checkpoint blobs are framed (damr wraps EncodeLeavesInto
		// output in a durable blob frame); verify integrity before
		// trusting a contribution. Raw blobs (direct EncodeLeaves use)
		// pass through unframed.
		if durable.IsFramed(b) {
			payload, err := durable.ExtractBlob(b)
			if err != nil {
				return nil, output.CorruptError(
					fmt.Sprintf("amr: leaf blob %d", i), err)
			}
			b = payload
		}
		var part []leafRecord
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&part); err != nil {
			return nil, output.CorruptError(
				fmt.Sprintf("amr: decode leaf blob %d", i), err)
		}
		recs = append(recs, part...)
	}
	t, err := newSkeleton(p, cfg, nbx, rootLayout(p, nbx))
	if err != nil {
		return nil, err
	}
	if err := t.installRecords(recs, time); err != nil {
		return nil, err
	}
	t.t = time
	t.steps = steps
	t.zoneUpdates = zoneUpdates
	return t, nil
}
