package state

import (
	"math/rand"
	"testing"
)

// panelGatherRef is the obvious per-row scalar gather PanelGather replaces.
func panelGatherRef(dst, src []float64, base, rstride, stride, nrows, n int) {
	for r := 0; r < nrows; r++ {
		for j := 0; j < n; j++ {
			dst[r*n+j] = src[base+r*rstride+j*stride]
		}
	}
}

func TestPanelGatherMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]float64, 4096)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	cases := []struct {
		name                            string
		base, rstride, stride, nrows, n int
	}{
		{"single-row", 3, 1, 17, 1, 40},
		{"y-panel", 5, 1, 32, 8, 30},
		{"z-panel", 2, 1, 32 * 8, 8, 15},
		{"partial-panel", 0, 1, 64, 3, 20},
		{"wide-rstride", 1, 9, 64, 5, 12},
		{"unit-length", 11, 1, 128, 8, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := make([]float64, tc.nrows*tc.n)
			want := make([]float64, tc.nrows*tc.n)
			PanelGather(got, src, tc.base, tc.rstride, tc.stride, tc.nrows, tc.n)
			panelGatherRef(want, src, tc.base, tc.rstride, tc.stride, tc.nrows, tc.n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dst[%d] = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestPanelGatherDegenerate(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := []float64{9, 9}
	PanelGather(dst, src, 0, 1, 1, 0, 2) // nrows <= 0: no-op
	PanelGather(dst, src, 0, 1, 1, 2, 0) // n <= 0: no-op
	if dst[0] != 9 || dst[1] != 9 {
		t.Fatalf("degenerate PanelGather wrote dst: %v", dst)
	}
}
