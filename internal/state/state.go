// Package state defines the primitive and conserved variables of special
// relativistic hydrodynamics, the algebraic maps between them (except the
// iterative conserved→primitive inversion, which lives in package c2p), the
// flux vectors, and the characteristic wave speeds.
//
// Conventions (c = 1, flat spacetime, Cartesian coordinates):
//
//	primitive:  ρ (rest-mass density), v^i (coordinate velocity), p (pressure)
//	conserved:  D   = ρ W
//	            S_i = ρ h W² v_i
//	            τ   = ρ h W² − p − D
//
// with W = (1 − v²)^{−1/2} and h = 1 + ε + p/ρ.
package state

import (
	"fmt"
	"math"

	"rhsc/internal/eos"
)

// Component indices shared by the conserved and primitive 5-vectors.
const (
	// Conserved components.
	ID   = 0 // relativistic rest-mass density D
	ISx  = 1 // momentum density S_x
	ISy  = 2 // momentum density S_y
	ISz  = 3 // momentum density S_z
	ITau = 4 // energy density τ = E − D

	// Primitive components.
	IRho = 0 // rest-mass density ρ
	IVx  = 1 // velocity v^x
	IVy  = 2 // velocity v^y
	IVz  = 3 // velocity v^z
	IP   = 4 // pressure p

	// NComp is the number of evolved components.
	NComp = 5
)

// Direction labels the coordinate axis of a flux sweep.
type Direction int

// Coordinate directions.
const (
	X Direction = 0
	Y Direction = 1
	Z Direction = 2
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case X:
		return "x"
	case Y:
		return "y"
	case Z:
		return "z"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Prim is the primitive state of a single cell.
type Prim struct {
	Rho float64 // rest-mass density
	Vx  float64 // velocity components
	Vy  float64
	Vz  float64
	P   float64 // pressure
}

// Cons is the conserved state of a single cell.
type Cons struct {
	D   float64 // ρW
	Sx  float64 // momentum densities
	Sy  float64
	Sz  float64
	Tau float64 // total energy minus D
}

// VSq returns v² = v_x² + v_y² + v_z².
func (p Prim) VSq() float64 {
	return p.Vx*p.Vx + p.Vy*p.Vy + p.Vz*p.Vz
}

// Lorentz returns the Lorentz factor W = (1 − v²)^{−1/2}. It panics if the
// state is superluminal, which is always a solver bug upstream.
func (p Prim) Lorentz() float64 {
	v2 := p.VSq()
	if v2 >= 1 {
		panic(fmt.Sprintf("state: superluminal primitive state v²=%v", v2))
	}
	return 1 / math.Sqrt(1-v2)
}

// V returns the velocity component along direction d.
func (p Prim) V(d Direction) float64 {
	switch d {
	case X:
		return p.Vx
	case Y:
		return p.Vy
	default:
		return p.Vz
	}
}

// IsPhysical reports whether the primitive state is admissible: positive
// density and pressure and subluminal velocity.
func (p Prim) IsPhysical() bool {
	return p.Rho > 0 && p.P > 0 && p.VSq() < 1 &&
		!math.IsNaN(p.Rho) && !math.IsNaN(p.P)
}

// ToCons converts the primitive state to conserved variables under the
// given equation of state.
func (p Prim) ToCons(e eos.EOS) Cons {
	w := p.Lorentz()
	h := e.Enthalpy(p.Rho, p.P)
	rhw2 := p.Rho * h * w * w
	d := p.Rho * w
	return Cons{
		D:   d,
		Sx:  rhw2 * p.Vx,
		Sy:  rhw2 * p.Vy,
		Sz:  rhw2 * p.Vz,
		Tau: rhw2 - p.P - d,
	}
}

// S returns the momentum component along direction d.
func (c Cons) S(d Direction) float64 {
	switch d {
	case X:
		return c.Sx
	case Y:
		return c.Sy
	default:
		return c.Sz
	}
}

// SSq returns S² = S_x² + S_y² + S_z².
func (c Cons) SSq() float64 {
	return c.Sx*c.Sx + c.Sy*c.Sy + c.Sz*c.Sz
}

// Flux returns the flux vector along direction d for a cell whose primitive
// and conserved states are (p, c):
//
//	F(D)   = D v_d
//	F(S_i) = S_i v_d + p δ_{id}
//	F(τ)   = S_d − D v_d
func Flux(p Prim, c Cons, d Direction) Cons {
	vd := p.V(d)
	f := Cons{
		D:   c.D * vd,
		Sx:  c.Sx * vd,
		Sy:  c.Sy * vd,
		Sz:  c.Sz * vd,
		Tau: c.S(d) - c.D*vd,
	}
	switch d {
	case X:
		f.Sx += p.P
	case Y:
		f.Sy += p.P
	default:
		f.Sz += p.P
	}
	return f
}

// WaveSpeeds returns the smallest and largest characteristic speeds (λ−, λ+)
// of the SRHD system along direction d:
//
//	λ± = [ v_d (1−c_s²) ± c_s sqrt( (1−v²)(1 − v²c_s² − v_d²(1−c_s²)) ) ]
//	     / (1 − v² c_s²)
//
// Both are guaranteed to lie in (−1, 1) for admissible states.
func WaveSpeeds(e eos.EOS, p Prim, d Direction) (lm, lp float64) {
	cs2 := e.SoundSpeed2(p.Rho, p.P)
	v2 := p.VSq()
	vd := p.V(d)
	den := 1 - v2*cs2
	disc := (1 - v2) * (1 - v2*cs2 - vd*vd*(1-cs2))
	if disc < 0 {
		disc = 0
	}
	root := math.Sqrt(disc) * math.Sqrt(cs2)
	lm = (vd*(1-cs2) - root) / den
	lp = (vd*(1-cs2) + root) / den
	return lm, lp
}

// MaxAbsSpeed returns max(|λ−|, |λ+|) along direction d — the CFL speed.
func MaxAbsSpeed(e eos.EOS, p Prim, d Direction) float64 {
	lm, lp := WaveSpeeds(e, p, d)
	return math.Max(math.Abs(lm), math.Abs(lp))
}

// Fields is a struct-of-arrays container for NComp evolved components over
// n cells, backed by one contiguous allocation so that sweeps stream through
// memory. It stores either conserved or primitive data; the component
// indices above give meaning to Comp.
type Fields struct {
	N    int // cells per component
	Comp [NComp][]float64
	back []float64 // single backing array
}

// NewFields allocates a zeroed Fields for n cells.
func NewFields(n int) *Fields {
	if n <= 0 {
		panic("state: NewFields needs n > 0")
	}
	f := &Fields{N: n, back: make([]float64, NComp*n)}
	for c := 0; c < NComp; c++ {
		f.Comp[c] = f.back[c*n : (c+1)*n : (c+1)*n]
	}
	return f
}

// Clone returns a deep copy.
func (f *Fields) Clone() *Fields {
	g := NewFields(f.N)
	copy(g.back, f.back)
	return g
}

// CopyFrom overwrites f with the contents of g. The sizes must match.
func (f *Fields) CopyFrom(g *Fields) {
	if f.N != g.N {
		panic("state: CopyFrom size mismatch")
	}
	copy(f.back, g.back)
}

// Zero clears all components.
func (f *Fields) Zero() {
	for i := range f.back {
		f.back[i] = 0
	}
}

// GetCons loads cell i as a Cons value.
func (f *Fields) GetCons(i int) Cons {
	return Cons{
		D:   f.Comp[ID][i],
		Sx:  f.Comp[ISx][i],
		Sy:  f.Comp[ISy][i],
		Sz:  f.Comp[ISz][i],
		Tau: f.Comp[ITau][i],
	}
}

// SetCons stores c into cell i.
func (f *Fields) SetCons(i int, c Cons) {
	f.Comp[ID][i] = c.D
	f.Comp[ISx][i] = c.Sx
	f.Comp[ISy][i] = c.Sy
	f.Comp[ISz][i] = c.Sz
	f.Comp[ITau][i] = c.Tau
}

// GetPrim loads cell i as a Prim value.
func (f *Fields) GetPrim(i int) Prim {
	return Prim{
		Rho: f.Comp[IRho][i],
		Vx:  f.Comp[IVx][i],
		Vy:  f.Comp[IVy][i],
		Vz:  f.Comp[IVz][i],
		P:   f.Comp[IP][i],
	}
}

// SetPrim stores p into cell i.
func (f *Fields) SetPrim(i int, p Prim) {
	f.Comp[IRho][i] = p.Rho
	f.Comp[IVx][i] = p.Vx
	f.Comp[IVy][i] = p.Vy
	f.Comp[IVz][i] = p.Vz
	f.Comp[IP][i] = p.P
}

// AXPY computes f ← f + a·g componentwise, the building block of
// Runge–Kutta stage combinations. The sizes must match.
func (f *Fields) AXPY(a float64, g *Fields) {
	if f.N != g.N {
		panic("state: AXPY size mismatch")
	}
	fb, gb := f.back, g.back
	for i := range fb {
		fb[i] += a * gb[i]
	}
}

// LinComb2 computes f ← a·u + b·v componentwise.
func (f *Fields) LinComb2(a float64, u *Fields, b float64, v *Fields) {
	if f.N != u.N || f.N != v.N {
		panic("state: LinComb2 size mismatch")
	}
	fb, ub, vb := f.back, u.back, v.back
	for i := range fb {
		fb[i] = a*ub[i] + b*vb[i]
	}
}

// LinComb2AXPY computes f ← a·u + b·(f + s·g) componentwise in a single
// pass. The per-element arithmetic is exactly f.AXPY(s, g) followed by
// f.LinComb2(a, u, b, f) — the SSP-RK stage combination — without the
// intermediate store/load traversal, so results are bitwise identical.
func (f *Fields) LinComb2AXPY(a float64, u *Fields, b, s float64, g *Fields) {
	if f.N != u.N || f.N != g.N {
		panic("state: LinComb2AXPY size mismatch")
	}
	fb, ub, gb := f.back, u.back, g.back
	for i := range fb {
		fb[i] = a*ub[i] + b*(fb[i]+s*gb[i])
	}
}

// Raw returns the contiguous backing slice (all components). Intended for
// checkpointing and message packing; mutating it mutates the fields.
func (f *Fields) Raw() []float64 { return f.back }

// PanelGather transposes a panel of nrows parallel strided rows into
// contiguous row-major storage:
//
//	dst[r*n + j] = src[base + r*rstride + j*stride]
//
// The sweep engine uses it for y/z strips of adjacent x columns
// (rstride = 1): the inner loop then copies a contiguous run of nrows
// values per element index j instead of walking nrows separate strided
// scalar loops, so every cache line fetched from the strided source is
// consumed in full before eviction. nrows = 1 degrades to the plain
// strided gather of a single row.
func PanelGather(dst, src []float64, base, rstride, stride, nrows, n int) {
	if nrows <= 0 || n <= 0 {
		return
	}
	if nrows == 1 {
		si := base
		for j := 0; j < n; j++ {
			dst[j] = src[si]
			si += stride
		}
		return
	}
	if rstride == 1 {
		for j := 0; j < n; j++ {
			off := base + j*stride
			run := src[off : off+nrows]
			di := j
			for _, v := range run {
				dst[di] = v
				di += n
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		si := base + j*stride
		di := j
		for r := 0; r < nrows; r++ {
			dst[di] = src[si]
			di += n
			si += rstride
		}
	}
}
