package state

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rhsc/internal/eos"
)

var gamma53 = eos.NewIdealGas(5.0 / 3.0)

func randomPrim(rng *rand.Rand) Prim {
	// Log-uniform density/pressure, velocity up to W ~ 22.
	v := 0.999 * rng.Float64()
	theta := rng.Float64() * math.Pi
	phi := rng.Float64() * 2 * math.Pi
	return Prim{
		Rho: math.Exp(rng.Float64()*8 - 4),
		Vx:  v * math.Sin(theta) * math.Cos(phi),
		Vy:  v * math.Sin(theta) * math.Sin(phi),
		Vz:  v * math.Cos(theta),
		P:   math.Exp(rng.Float64()*8 - 4),
	}
}

func TestLorentzFactor(t *testing.T) {
	p := Prim{Rho: 1, Vx: 0.6, P: 1}
	if w := p.Lorentz(); math.Abs(w-1.25) > 1e-14 {
		t.Errorf("W = %v, want 1.25", w)
	}
	rest := Prim{Rho: 1, P: 1}
	if w := rest.Lorentz(); w != 1 {
		t.Errorf("rest frame W = %v", w)
	}
}

func TestLorentzPanicsSuperluminal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for v >= 1")
		}
	}()
	Prim{Rho: 1, Vx: 1.0, P: 1}.Lorentz()
}

func TestPrimToConsKnown(t *testing.T) {
	// v = 0: D = rho, S = 0, tau = rho*eps (ideal gas).
	p := Prim{Rho: 2, P: 0.8}
	c := p.ToCons(gamma53)
	if math.Abs(c.D-2) > 1e-14 {
		t.Errorf("D = %v, want 2", c.D)
	}
	if c.Sx != 0 || c.Sy != 0 || c.Sz != 0 {
		t.Errorf("S = (%v,%v,%v), want 0", c.Sx, c.Sy, c.Sz)
	}
	// tau = rho*h - p - rho with h = 1 + (5/3)/(2/3)*p/rho = 1 + 2.5*0.4 = 2.
	// tau = 2*2 - 0.8 - 2 = 1.2. Also equals rho*eps = 2 * p/((g-1)rho) = 1.2.
	if math.Abs(c.Tau-1.2) > 1e-14 {
		t.Errorf("Tau = %v, want 1.2", c.Tau)
	}
}

// Admissibility of conserved states built from physical primitives:
// D > 0, tau > 0, and the exact kinematic identity S = (tau + D + p) v,
// which implies the causality bound |S| < tau + D + p.
func TestConsAdmissibility(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p := randomPrim(rng)
		c := p.ToCons(gamma53)
		if !(c.D > 0) {
			t.Fatalf("D = %v for %+v", c.D, p)
		}
		if c.Tau <= 0 {
			t.Fatalf("tau = %v for %+v", c.Tau, p)
		}
		ep := c.Tau + c.D + p.P
		wantS := math.Sqrt(p.VSq()) * ep
		if gotS := math.Sqrt(c.SSq()); math.Abs(gotS-wantS) > 1e-9*(1+wantS) {
			t.Fatalf("|S| = %v, want (tau+D+p)|v| = %v for %+v", gotS, wantS, p)
		}
		if c.SSq() >= ep*ep {
			t.Fatalf("causality bound violated: |S| >= tau+D+p for %+v", p)
		}
	}
}

func TestFluxRestFrame(t *testing.T) {
	// At rest the only nonzero flux is the pressure in the momentum slot.
	p := Prim{Rho: 1.5, P: 0.7}
	c := p.ToCons(gamma53)
	for _, d := range []Direction{X, Y, Z} {
		f := Flux(p, c, d)
		if f.D != 0 || f.Tau != 0 {
			t.Errorf("dir %v: F.D=%v F.Tau=%v, want 0", d, f.D, f.Tau)
		}
		want := [3]float64{}
		want[int(d)] = 0.7
		if f.Sx != want[0] || f.Sy != want[1] || f.Sz != want[2] {
			t.Errorf("dir %v: F.S = (%v,%v,%v)", d, f.Sx, f.Sy, f.Sz)
		}
	}
}

// The tau flux identity F(tau) = (tau + p) v_d must hold because
// S_d = (tau + D + p) v_d.
func TestTauFluxIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		p := randomPrim(rng)
		c := p.ToCons(gamma53)
		for _, d := range []Direction{X, Y, Z} {
			f := Flux(p, c, d)
			want := (c.Tau + p.P) * p.V(d)
			if math.Abs(f.Tau-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("F(tau) = %v, want %v", f.Tau, want)
			}
		}
	}
}

// Rotational covariance: rotating the state by 90 degrees about z must
// permute the flux components accordingly.
func TestFluxRotationalCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		p := randomPrim(rng)
		c := p.ToCons(gamma53)
		fx := Flux(p, c, X)
		// Rotate: (vx,vy) -> (-vy, vx).
		pr := Prim{Rho: p.Rho, Vx: -p.Vy, Vy: p.Vx, Vz: p.Vz, P: p.P}
		cr := pr.ToCons(gamma53)
		fy := Flux(pr, cr, Y)
		// F_y(rotated) must equal rotation of F_x(original):
		// D, tau unchanged; (Sx,Sy) -> (-Sy, Sx).
		if math.Abs(fy.D-fx.D) > 1e-10*(1+math.Abs(fx.D)) {
			t.Fatalf("D flux not covariant: %v vs %v", fy.D, fx.D)
		}
		if math.Abs(fy.Tau-fx.Tau) > 1e-10*(1+math.Abs(fx.Tau)) {
			t.Fatalf("tau flux not covariant: %v vs %v", fy.Tau, fx.Tau)
		}
		if math.Abs(fy.Sx+fx.Sy) > 1e-9*(1+math.Abs(fx.Sy)) ||
			math.Abs(fy.Sy-fx.Sx) > 1e-9*(1+math.Abs(fx.Sx)) {
			t.Fatalf("S flux not covariant: got (%v,%v), want (%v,%v)",
				fy.Sx, fy.Sy, -fx.Sy, fx.Sx)
		}
	}
}

// Wave speeds must be causal, ordered, and bracket the flow speed.
func TestWaveSpeedsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		p := randomPrim(rng)
		for _, d := range []Direction{X, Y, Z} {
			lm, lp := WaveSpeeds(gamma53, p, d)
			if !(lm <= lp) {
				t.Fatalf("unordered speeds %v > %v", lm, lp)
			}
			if lm <= -1 || lp >= 1 {
				t.Fatalf("acausal speeds (%v, %v) for %+v", lm, lp, p)
			}
			vd := p.V(d)
			if vd < lm-1e-12 || vd > lp+1e-12 {
				t.Fatalf("flow speed %v outside [%v, %v]", vd, lm, lp)
			}
		}
	}
}

func TestWaveSpeedsRestFrame(t *testing.T) {
	// At rest: lambda_pm = -+ cs.
	p := Prim{Rho: 1, P: 1}
	cs := math.Sqrt(gamma53.SoundSpeed2(1, 1))
	lm, lp := WaveSpeeds(gamma53, p, X)
	if math.Abs(lm+cs) > 1e-14 || math.Abs(lp-cs) > 1e-14 {
		t.Errorf("rest speeds (%v, %v), want (-+%v)", lm, lp, cs)
	}
}

func TestWaveSpeeds1DKnown(t *testing.T) {
	// Pure 1-D flow: lambda_pm = (v +- cs)/(1 +- v cs).
	p := Prim{Rho: 1, Vx: 0.5, P: 0.1}
	cs := math.Sqrt(gamma53.SoundSpeed2(p.Rho, p.P))
	wantM := (0.5 - cs) / (1 - 0.5*cs)
	wantP := (0.5 + cs) / (1 + 0.5*cs)
	lm, lp := WaveSpeeds(gamma53, p, X)
	if math.Abs(lm-wantM) > 1e-12 || math.Abs(lp-wantP) > 1e-12 {
		t.Errorf("1D speeds (%v,%v), want (%v,%v)", lm, lp, wantM, wantP)
	}
}

func TestMaxAbsSpeed(t *testing.T) {
	p := Prim{Rho: 1, Vx: 0.9, P: 0.01}
	m := MaxAbsSpeed(gamma53, p, X)
	_, lp := WaveSpeeds(gamma53, p, X)
	if m != lp {
		t.Errorf("MaxAbsSpeed = %v, want %v", m, lp)
	}
}

func TestDirectionString(t *testing.T) {
	if X.String() != "x" || Y.String() != "y" || Z.String() != "z" {
		t.Error("direction names wrong")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction should still print")
	}
}

func TestFieldsRoundTrip(t *testing.T) {
	f := NewFields(10)
	c := Cons{D: 1, Sx: 2, Sy: 3, Sz: 4, Tau: 5}
	f.SetCons(7, c)
	if got := f.GetCons(7); got != c {
		t.Errorf("GetCons = %+v", got)
	}
	p := Prim{Rho: 1, Vx: 0.1, Vy: 0.2, Vz: 0.3, P: 2}
	f.SetPrim(3, p)
	if got := f.GetPrim(3); got != p {
		t.Errorf("GetPrim = %+v", got)
	}
}

func TestFieldsCloneIndependent(t *testing.T) {
	f := NewFields(4)
	f.Comp[ID][0] = 42
	g := f.Clone()
	g.Comp[ID][0] = 7
	if f.Comp[ID][0] != 42 {
		t.Error("Clone aliases original")
	}
}

func TestFieldsAXPY(t *testing.T) {
	f := NewFields(3)
	g := NewFields(3)
	for c := 0; c < NComp; c++ {
		for i := 0; i < 3; i++ {
			f.Comp[c][i] = float64(c + i)
			g.Comp[c][i] = 1
		}
	}
	f.AXPY(2, g)
	if f.Comp[1][2] != 1+2+2 {
		t.Errorf("AXPY wrong: %v", f.Comp[1][2])
	}
}

func TestFieldsLinComb2(t *testing.T) {
	u, v, f := NewFields(2), NewFields(2), NewFields(2)
	u.Comp[0][0] = 3
	v.Comp[0][0] = 5
	f.LinComb2(0.25, u, 0.75, v)
	if got := f.Comp[0][0]; math.Abs(got-4.5) > 1e-15 {
		t.Errorf("LinComb2 = %v, want 4.5", got)
	}
}

func TestFieldsSizeMismatchPanics(t *testing.T) {
	f, g := NewFields(2), NewFields(3)
	for _, fn := range []func(){
		func() { f.AXPY(1, g) },
		func() { f.CopyFrom(g) },
		func() { f.LinComb2(1, g, 1, g) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected size-mismatch panic")
				}
			}()
			fn()
		}()
	}
}

func TestIsPhysical(t *testing.T) {
	if !(Prim{Rho: 1, P: 1}).IsPhysical() {
		t.Error("valid state reported unphysical")
	}
	bad := []Prim{
		{Rho: -1, P: 1},
		{Rho: 1, P: -1},
		{Rho: 1, P: 1, Vx: 1.2},
		{Rho: math.NaN(), P: 1},
	}
	for _, b := range bad {
		if b.IsPhysical() {
			t.Errorf("unphysical state %+v accepted", b)
		}
	}
}

// Newtonian limit: for v << 1 and p << rho, the conserved variables must
// approach their Newtonian counterparts.
func TestNewtonianLimit(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := 1 + rng.Float64()
		v := 1e-5 * rng.Float64()
		p := 1e-10 * (1 + rng.Float64())
		pr := Prim{Rho: rho, Vx: v, P: p}
		c := pr.ToCons(gamma53)
		// D ~ rho, Sx ~ rho v, tau ~ rho v^2/2 + p/(g-1).
		if math.Abs(c.D-rho)/rho > 1e-9 {
			return false
		}
		if math.Abs(c.Sx-rho*v) > 1e-8*rho*v+1e-18 {
			return false
		}
		wantTau := 0.5*rho*v*v + p/(2.0/3.0)
		return math.Abs(c.Tau-wantTau) < 1e-6*wantTau+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
