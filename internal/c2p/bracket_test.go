package c2p

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rhsc/internal/state"
)

// TestCausalityBoundBracket is the regression test for the pMin clamp
// simplification: pMin = max(PFloor, (|S|−E)(1+1e-10)) already floors the
// causality bound, so the old second clamp (`if pMin < PFloor`) was dead.
// The test pins the two behaviours the bracket must keep:
//
//  1. for every admissible Γ-law state the causality term |S|−E is
//     strictly negative (ρh/(1+v) > p for γ ≤ 2), so the bound can only
//     activate for inadmissible inputs — which must be classified as
//     "no pressure bracket" and reset to an atmosphere whose pressure
//     still respects the floor;
//  2. near-bound admissible states (ultra-relativistic, |S|/E → 1) must
//     still recover through the PFloor-anchored bracket.
func TestCausalityBoundBracket(t *testing.T) {
	s := NewSolver(gamma53)

	// (1a) The invariant that makes the inner clamp dead: |S| < E for
	// every state reachable from admissible primitives.
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 5000; i++ {
		c := randomPrim(rng, 0.9999).ToCons(gamma53)
		e := c.Tau + c.D
		if sAbs := math.Sqrt(c.SSq()); sAbs >= e {
			t.Fatalf("admissible state with |S|=%v >= E=%v", sAbs, e)
		}
	}

	// (1b) A state beyond the bound: |S| > E admits no pressure at all.
	bad := state.Cons{D: 1e-3, Sx: 2, Tau: 1 - 1e-3}
	p, err := s.Recover(bad, 0)
	if !errors.Is(err, ErrUnphysical) {
		t.Fatalf("causality-violating state: err = %v, want ErrUnphysical", err)
	}
	if p != s.atmosphere() {
		t.Fatalf("causality-violating state not reset to atmosphere: %+v", p)
	}
	if p.P < s.Opts.PFloor {
		t.Fatalf("atmosphere pressure %v below floor %v", p.P, s.Opts.PFloor)
	}

	// (2) Near the bound from the admissible side: W = 1e4,
	// pressure-dominated, |S|/E within ~1e-8 of unity. The bracket is
	// anchored at PFloor and the recovery must converge.
	v := math.Sqrt(1 - 1e-8)
	p0 := state.Prim{Rho: 1e-6, Vx: v, P: 1}
	c := p0.ToCons(gamma53)
	if sAbs, e := math.Sqrt(c.SSq()), c.Tau+c.D; 1-sAbs/e > 1e-7 {
		t.Fatalf("state not near the causality bound: 1-|S|/E = %v", 1-sAbs/e)
	}
	p1, err := s.Recover(c, 0)
	if err != nil {
		t.Fatalf("near-bound state failed: %v", err)
	}
	if math.Abs(p1.P-p0.P)/p0.P > 1e-6 || math.Abs(p1.Vx-v) > 1e-9 {
		t.Fatalf("near-bound drift: got %+v want %+v", p1, p0)
	}
	if p1.P < s.Opts.PFloor {
		t.Fatalf("recovered pressure %v below floor", p1.P)
	}
}

// newtonDefeatingCons returns a conserved state whose physical pressure
// sits below the given elevated floor: Newton is pinned against
// pMin = PFloor with a residual that never meets the tolerance, so the
// recovery must take the bisection fallback (which cold-clamps to the
// floor). Deterministic — no randomness.
func newtonDefeatingCons() state.Cons {
	return state.Prim{Rho: 1, Vx: 0.3, P: 1e-6}.ToCons(gamma53)
}

// TestFaultBisectionFallbackDefeatsNewton covers the Bisections stat: a
// crafted cold state under an elevated pressure floor defeats Newton at
// the default iteration budget and must converge via the fallback.
func TestFaultBisectionFallbackDefeatsNewton(t *testing.T) {
	s := NewSolver(gamma53)
	s.Opts.PFloor = 1e-3 // physical pressure 1e-6 sits below the floor
	c := newtonDefeatingCons()
	p, err := s.Recover(c, 0)
	if err != nil {
		t.Fatalf("crafted state failed: %v", err)
	}
	if got := s.Stat.Bisections.Load(); got != 1 {
		t.Fatalf("Bisections = %d, want 1 (Newton not defeated)", got)
	}
	// The fallback cold-clamps onto the floor bracket.
	if p.P < s.Opts.PFloor || p.P > 2*s.Opts.PFloor {
		t.Fatalf("cold clamp missed the floor bracket: P = %v", p.P)
	}
	// The kinematics must still converge: v from S/(E+p) with the
	// clamped pressure stays close to the true 0.3.
	if math.Abs(p.Vx-0.3) > 1e-2 || math.Abs(p.Rho-1) > 1e-2 {
		t.Fatalf("fallback did not converge: %+v", p)
	}
}

// TestFaultBisectionStatsConcurrent drives the bisection fallback from
// parallel RecoverRange workers over one shared solver while Snapshot
// runs concurrently (exercised under -race), pinning the batched-stats
// contract for the Bisections counter: exact totals once the workers
// have returned.
func TestFaultBisectionStatsConcurrent(t *testing.T) {
	s := NewSolver(gamma53)
	s.Opts.PFloor = 1e-3
	const workers = 8
	const perWorker = 128
	n := workers * perWorker
	cons := state.NewFields(n)
	prim := state.NewFields(n)
	rng := rand.New(rand.NewSource(41))
	crafted := 0
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			cons.SetCons(i, newtonDefeatingCons())
			crafted++
			continue
		}
		// Comfortably hot states that Newton handles directly.
		p := randomPrim(rng, 0.9)
		p.P += 1 // keep well above the elevated floor
		cons.SetCons(i, p.ToCons(gamma53))
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			failures.Add(int64(s.RecoverRange(cons, prim, lo, lo+perWorker)))
		}(w * perWorker)
	}
	// Concurrent snapshots must be race-free and monotone.
	var last int64
	for i := 0; i < 50; i++ {
		if b := s.Stat.Bisections.Load(); b < last {
			t.Fatalf("Bisections went backwards: %d -> %d", last, b)
		} else {
			last = b
		}
	}
	wg.Wait()

	if f := failures.Load(); f != 0 {
		t.Fatalf("unexpected failures: %d", f)
	}
	if b := s.Stat.Bisections.Load(); b != int64(crafted) {
		t.Fatalf("Bisections = %d, want %d", b, crafted)
	}
	for i := 0; i < n; i += 7 {
		if p := prim.GetPrim(i); p.P < s.Opts.PFloor || math.Abs(p.Vx-0.3) > 1e-2 {
			t.Fatalf("crafted cell %d did not converge: %+v", i, p)
		}
	}
}

// TestRecoverRangeExFlagging covers the fail-safe entry point: in
// flagging mode failures mark the mask and leave the conserved state
// untouched, and the result carries the pre-reset cons of the first
// offender.
func TestRecoverRangeExFlagging(t *testing.T) {
	s := NewSolver(gamma53)
	n := 8
	cons := state.NewFields(n)
	prim := state.NewFields(n)
	good := state.Prim{Rho: 1, P: 1}
	for i := 0; i < n; i++ {
		cons.SetCons(i, good.ToCons(gamma53))
	}
	hopeless := state.Cons{D: 1, Sx: 100, Tau: 0.1}
	cons.SetCons(3, hopeless)
	cons.SetCons(5, state.Cons{D: -1, Tau: 1})

	mask := make([]uint8, n)
	res := s.RecoverRangeEx(cons, prim, 0, n, mask, false)
	if res.Failures != 2 {
		t.Fatalf("Failures = %d, want 2", res.Failures)
	}
	if res.FirstIdx != 3 || res.FirstCons != hopeless {
		t.Fatalf("first failure not preserved: idx=%d cons=%+v", res.FirstIdx, res.FirstCons)
	}
	for i := 0; i < n; i++ {
		want := uint8(0)
		if i == 3 || i == 5 {
			want = 1
		}
		if mask[i] != want {
			t.Fatalf("mask[%d] = %d, want %d", i, mask[i], want)
		}
	}
	// Flagging mode must not rewrite the conserved state.
	if got := cons.GetCons(3); got != hopeless {
		t.Fatalf("flagging mode rewrote cons: %+v", got)
	}
	// The prim placeholder is the atmosphere.
	if p := prim.GetPrim(3); p != s.atmosphere() {
		t.Fatalf("failed cell prim = %+v, want atmosphere", p)
	}

	// Reset mode matches RecoverRange and still reports the first cons.
	res2 := s.RecoverRangeEx(cons, prim, 0, n, nil, true)
	if res2.Failures != 2 || res2.FirstIdx != 3 || res2.FirstCons != hopeless {
		t.Fatalf("reset mode result: %+v", res2)
	}
	if got := cons.GetCons(3); got == hopeless {
		t.Fatal("reset mode left cons untouched")
	}
}
