package c2p

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rhsc/internal/eos"
	"rhsc/internal/state"
)

var gamma53 = eos.NewIdealGas(5.0 / 3.0)

func randomPrim(rng *rand.Rand, vmax float64) state.Prim {
	v := vmax * rng.Float64()
	theta := rng.Float64() * math.Pi
	phi := rng.Float64() * 2 * math.Pi
	return state.Prim{
		Rho: math.Exp(rng.Float64()*10 - 5),
		Vx:  v * math.Sin(theta) * math.Cos(phi),
		Vy:  v * math.Sin(theta) * math.Sin(phi),
		Vz:  v * math.Cos(theta),
		P:   math.Exp(rng.Float64()*10 - 5),
	}
}

func primsClose(a, b state.Prim, tol float64) bool {
	rel := func(x, y float64) float64 {
		return math.Abs(x-y) / (1 + math.Max(math.Abs(x), math.Abs(y)))
	}
	return rel(a.Rho, b.Rho) < tol && rel(a.P, b.P) < tol &&
		rel(a.Vx, b.Vx) < tol && rel(a.Vy, b.Vy) < tol && rel(a.Vz, b.Vz) < tol
}

// The fundamental round-trip property: prim -> cons -> prim must be the
// identity to solver tolerance, across many decades of density/pressure and
// Lorentz factors up to ~70.
func TestRoundTripIdealGas(t *testing.T) {
	s := NewSolver(gamma53)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		p0 := randomPrim(rng, 0.9999)
		c := p0.ToCons(gamma53)
		p1, err := s.Recover(c, 0)
		if err != nil {
			t.Fatalf("recover failed for %+v: %v", p0, err)
		}
		if !primsClose(p0, p1, 1e-8) {
			t.Fatalf("round trip drift:\n in  %+v\n out %+v", p0, p1)
		}
	}
}

func TestRoundTripTaubMathews(t *testing.T) {
	tm := eos.TaubMathews{}
	s := NewSolver(tm)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p0 := randomPrim(rng, 0.999)
		c := p0.ToCons(tm)
		p1, err := s.Recover(c, 0)
		if err != nil {
			t.Fatalf("recover failed for %+v: %v", p0, err)
		}
		if !primsClose(p0, p1, 1e-7) {
			t.Fatalf("round trip drift:\n in  %+v\n out %+v", p0, p1)
		}
	}
}

func TestRoundTripHybrid(t *testing.T) {
	h := eos.NewHybrid(0.3, 2, 5.0/3.0)
	s := NewSolver(h)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 3000; i++ {
		rho := math.Exp(rng.Float64()*4 - 2)
		// Hot states above the cold curve so the EOS is invertible.
		eps := h.Eps(rho, h.Pressure(rho, 0)) * (1 + rng.Float64()*4)
		p := h.Pressure(rho, eps)
		v := 0.95 * rng.Float64()
		p0 := state.Prim{Rho: rho, Vx: v, P: p}
		c := p0.ToCons(h)
		p1, err := s.Recover(c, 0)
		if err != nil {
			t.Fatalf("recover failed for %+v: %v", p0, err)
		}
		if !primsClose(p0, p1, 1e-7) {
			t.Fatalf("round trip drift:\n in  %+v\n out %+v", p0, p1)
		}
	}
}

func TestRoundTripTabulated(t *testing.T) {
	tab, err := eos.BuildTable(gamma53, 1e-8, 1e8, 1e-8, 1e8, 256, 256)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(tab)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		p0 := randomPrim(rng, 0.99)
		c := p0.ToCons(tab)
		p1, err := s.Recover(c, 0)
		if err != nil {
			t.Fatalf("recover failed for %+v: %v", p0, err)
		}
		// Table interpolation limits attainable accuracy.
		if !primsClose(p0, p1, 5e-3) {
			t.Fatalf("round trip drift:\n in  %+v\n out %+v", p0, p1)
		}
	}
}

// A good guess (the exact pressure) must converge in very few Newton
// iterations; this is the hot path during time stepping.
func TestGuessAcceleratesConvergence(t *testing.T) {
	s := NewSolver(gamma53)
	p0 := state.Prim{Rho: 1, Vx: 0.5, P: 0.1}
	c := p0.ToCons(gamma53)
	if _, err := s.Recover(c, p0.P); err != nil {
		t.Fatal(err)
	}
	if iters := s.Stat.NewtonIters.Load(); iters > 5 {
		t.Errorf("exact guess took %d Newton iterations", iters)
	}
}

func TestRestFrameState(t *testing.T) {
	s := NewSolver(gamma53)
	c := state.Cons{D: 2, Tau: 1.2} // from TestPrimToConsKnown: rho=2, p=0.8
	p, err := s.Recover(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Rho-2) > 1e-10 || math.Abs(p.P-0.8) > 1e-10 {
		t.Errorf("rest state: rho=%v p=%v, want 2, 0.8", p.Rho, p.P)
	}
	if p.Vx != 0 || p.Vy != 0 || p.Vz != 0 {
		t.Errorf("rest state has velocity %+v", p)
	}
}

func TestUnphysicalStatesGoToAtmosphere(t *testing.T) {
	s := NewSolver(gamma53)
	bad := []state.Cons{
		{D: -1, Tau: 1},                 // negative D
		{D: 1, Tau: -2},                 // E < 0
		{D: math.NaN(), Tau: 1},         // NaN
		{D: 1e-30, Sx: 100, Tau: 1e-30}, // |S| >> E: superluminal
	}
	for _, c := range bad {
		p, err := s.Recover(c, 0)
		if err == nil {
			t.Errorf("state %+v recovered without error: %+v", c, p)
			continue
		}
		atm := s.atmosphere()
		if p != atm {
			t.Errorf("state %+v did not reset to atmosphere: %+v", c, p)
		}
	}
	if f := s.Stat.Failures.Load(); f != int64(len(bad)) {
		t.Errorf("failure count = %d, want %d", f, len(bad))
	}
}

func TestFloorsApplied(t *testing.T) {
	s := NewSolver(gamma53)
	s.Opts.RhoFloor = 1e-6
	s.Opts.PFloor = 1e-8
	// A very dilute but physical state below the floors.
	p0 := state.Prim{Rho: 1e-9, P: 1e-12}
	c := p0.ToCons(gamma53)
	p, err := s.Recover(c, 0)
	if err != nil {
		t.Fatalf("dilute state failed: %v", err)
	}
	if p.Rho < s.Opts.RhoFloor || p.P < s.Opts.PFloor {
		t.Errorf("floors not applied: %+v", p)
	}
	if s.Stat.FloorHits.Load() == 0 {
		t.Error("floor hits not counted")
	}
}

// Ultra-relativistic regime: W = 100 with pressure-dominated state. This is
// where naive inversions lose all precision.
func TestUltraRelativistic(t *testing.T) {
	s := NewSolver(gamma53)
	v := math.Sqrt(1 - 1e-4) // W = 100
	p0 := state.Prim{Rho: 1e-3, Vx: v, P: 10}
	c := p0.ToCons(gamma53)
	p1, err := s.Recover(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.P-p0.P)/p0.P > 1e-6 {
		t.Errorf("pressure drift: %v vs %v", p1.P, p0.P)
	}
	if math.Abs(p1.Vx-v) > 1e-9 {
		t.Errorf("velocity drift: %v vs %v", p1.Vx, v)
	}
}

// The bisection fallback must deliver the same answer Newton does.
func TestBisectionFallbackAgrees(t *testing.T) {
	newton := NewSolver(gamma53)
	forced := NewSolver(gamma53)
	forced.Opts.MaxIter = 0 // force every call onto the fallback path
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		p0 := randomPrim(rng, 0.99)
		c := p0.ToCons(gamma53)
		a, err1 := newton.Recover(c, 0)
		b, err2 := forced.Recover(c, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("recover error: %v %v", err1, err2)
		}
		if !primsClose(a, b, 1e-7) {
			t.Fatalf("fallback disagrees:\n newton %+v\n bisect %+v", a, b)
		}
	}
	if forced.Stat.Bisections.Load() == 0 {
		t.Error("fallback path not exercised")
	}
}

func TestRecoverRange(t *testing.T) {
	s := NewSolver(gamma53)
	n := 64
	cons := state.NewFields(n)
	prim := state.NewFields(n)
	rng := rand.New(rand.NewSource(5))
	want := make([]state.Prim, n)
	for i := 0; i < n; i++ {
		want[i] = randomPrim(rng, 0.99)
		cons.SetCons(i, want[i].ToCons(gamma53))
	}
	if failures := s.RecoverRange(cons, prim, 0, n); failures != 0 {
		t.Fatalf("%d failures", failures)
	}
	for i := 0; i < n; i++ {
		if !primsClose(prim.GetPrim(i), want[i], 1e-8) {
			t.Fatalf("cell %d drift", i)
		}
	}
}

func TestRecoverRangeResyncsFailures(t *testing.T) {
	s := NewSolver(gamma53)
	n := 4
	cons := state.NewFields(n)
	prim := state.NewFields(n)
	good := state.Prim{Rho: 1, P: 1}
	cons.SetCons(0, good.ToCons(gamma53))
	cons.SetCons(1, state.Cons{D: 1, Sx: 100, Tau: 0.1}) // hopeless
	cons.SetCons(2, good.ToCons(gamma53))
	cons.SetCons(3, good.ToCons(gamma53))
	failures := s.RecoverRange(cons, prim, 0, n)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
	// The failed cell's cons must now be consistent with its (atmosphere) prim.
	p := prim.GetPrim(1)
	wantCons := p.ToCons(gamma53)
	if got := cons.GetCons(1); math.Abs(got.D-wantCons.D) > 1e-15 {
		t.Errorf("failed cell not resynced: %+v vs %+v", got, wantCons)
	}
}

func TestRecoverRangePanics(t *testing.T) {
	s := NewSolver(gamma53)
	a, b := state.NewFields(4), state.NewFields(5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("size mismatch not caught")
			}
		}()
		s.RecoverRange(a, b, 0, 4)
	}()
	c := state.NewFields(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad range not caught")
			}
		}()
		s.RecoverRange(a, c, 2, 9)
	}()
}

func TestStatsSnapshot(t *testing.T) {
	s := NewSolver(gamma53)
	p := state.Prim{Rho: 1, P: 1}
	for i := 0; i < 10; i++ {
		if _, err := s.Recover(p.ToCons(gamma53), 0); err != nil {
			t.Fatal(err)
		}
	}
	calls, iters, _, _, failures := s.Stat.Snapshot()
	if calls != 10 || failures != 0 || iters == 0 {
		t.Errorf("stats = calls %d iters %d failures %d", calls, iters, failures)
	}
}

// Fuzz-style robustness: wildly random conserved states (most of them
// garbage) must never panic or return non-finite primitives — the solver
// either recovers a physical state or resets to atmosphere with an error.
func TestRecoverNeverPanicsOnGarbage(t *testing.T) {
	s := NewSolver(gamma53)
	rng := rand.New(rand.NewSource(99))
	randVal := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return -math.Exp(rng.Float64()*40 - 20)
		case 2:
			return math.Exp(rng.Float64()*40 - 20)
		case 3:
			return math.Inf(1)
		case 4:
			return math.NaN()
		default:
			return rng.NormFloat64()
		}
	}
	for i := 0; i < 20000; i++ {
		c := state.Cons{
			D: randVal(), Sx: randVal(), Sy: randVal(), Sz: randVal(), Tau: randVal(),
		}
		p, _ := s.Recover(c, randVal())
		for _, v := range []float64{p.Rho, p.Vx, p.Vy, p.Vz, p.P} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite primitive %+v from %+v", p, c)
			}
		}
		if p.Rho <= 0 || p.P <= 0 || p.VSq() >= 1 {
			t.Fatalf("inadmissible primitive %+v from %+v", p, c)
		}
	}
}

// The piecewise-polytropic EOS must round trip through c2p for hot states.
// The parameters are chosen so the cold curve stays causal (c_s < 1) over
// the sampled density range: with an acausal cold curve the
// primitive→conserved map is not injective and no inversion can succeed.
func TestRoundTripPiecewisePolytrope(t *testing.T) {
	pp, err := eos.NewPiecewisePolytrope(0.1,
		[]float64{0.5, 2.0}, []float64{1.5, 1.8, 2.0}, 5.0/3.0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(pp)
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 2000; i++ {
		rho := math.Exp(rng.Float64()*4 - 2)
		eps := pp.ColdEps(rho)*(1+2*rng.Float64()) + 0.01
		p := pp.Pressure(rho, eps)
		v := 0.9 * rng.Float64()
		p0 := state.Prim{Rho: rho, Vx: v, P: p}
		p1, err := s.Recover(p0.ToCons(pp), 0)
		if err != nil {
			t.Fatalf("recover failed for %+v: %v", p0, err)
		}
		if !primsClose(p0, p1, 1e-7) {
			t.Fatalf("round trip drift:\n in  %+v\n out %+v", p0, p1)
		}
	}
}

// Concurrent use of one solver must be race-free (run with -race) and
// correct.
func TestConcurrentRecover(t *testing.T) {
	s := NewSolver(gamma53)
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				p0 := randomPrim(rng, 0.99)
				p1, err := s.Recover(p0.ToCons(gamma53), 0)
				if err != nil {
					done <- err
					return
				}
				if !primsClose(p0, p1, 1e-8) {
					done <- ErrUnphysical
					return
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStatsConcurrentAccounting pins the Stats atomicity contract: with
// parallel RecoverRange callers over disjoint ranges of one shared
// solver, Snapshot may run concurrently (exercised under -race), and
// once all workers have returned the counters must be exact — one call
// per cell, failures matching the deliberately poisoned cells.
func TestStatsConcurrentAccounting(t *testing.T) {
	s := NewSolver(gamma53)
	const workers = 8
	const perWorker = 256
	n := workers * perWorker
	cons := state.NewFields(n)
	prim := state.NewFields(n)
	rng := rand.New(rand.NewSource(11))
	poisoned := 0
	for i := 0; i < n; i++ {
		if i%97 == 0 {
			// Unrecoverable state: negative conserved density.
			cons.SetCons(i, state.Cons{D: -1, Tau: 1})
			poisoned++
			continue
		}
		cons.SetCons(i, randomPrim(rng, 0.99).ToCons(gamma53))
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			failures.Add(int64(s.RecoverRange(cons, prim, lo, lo+perWorker)))
		}(w * perWorker)
	}
	// Concurrent snapshots must be race-free and monotone in Calls.
	var last int64
	for i := 0; i < 50; i++ {
		calls, _, _, _, _ := s.Stat.Snapshot()
		if calls < last {
			t.Fatalf("Calls went backwards: %d -> %d", last, calls)
		}
		last = calls
	}
	wg.Wait()

	calls, iters, _, _, failed := s.Stat.Snapshot()
	if calls != int64(n) {
		t.Fatalf("Calls = %d, want %d", calls, n)
	}
	if failed != int64(poisoned) || failures.Load() != int64(poisoned) {
		t.Fatalf("Failures = %d (returned %d), want %d", failed, failures.Load(), poisoned)
	}
	if iters <= 0 {
		t.Fatalf("NewtonIters = %d, want > 0", iters)
	}
}
