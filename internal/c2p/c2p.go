// Package c2p implements the conservative-to-primitive inversion of special
// relativistic hydrodynamics.
//
// Unlike Newtonian hydro, the map (D, S_i, τ) → (ρ, v_i, p) has no closed
// form: the solver performs a one-dimensional root find on the pressure.
// Given a pressure candidate p the remaining primitives follow
// algebraically:
//
//	E  = τ + D              (total energy density)
//	v² = S² / (E + p)²
//	W  = (1 − v²)^{−1/2}
//	ρ  = D / W
//	h  = (E + p) / (D W)
//	ε  = h − 1 − p/ρ
//
// and the residual is f(p) = p_EOS(ρ, ε) − p. The derivative is
// approximated by the standard expression f'(p) ≈ v² c_s² − 1 < 0, which
// makes Newton monotone for admissible states. If Newton stalls or leaves
// the admissible bracket, the solver falls back to bisection on
// [p_min, p_max], where p_min = max(floor, |S| − E) is the causality bound.
//
// The package also owns the robustness policy production HRSC codes need
// near vacuum: density and pressure floors ("atmosphere"), a velocity cap,
// and per-solver failure accounting.
package c2p

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"rhsc/internal/eos"
	"rhsc/internal/state"
)

// Options configures the inversion.
type Options struct {
	// Tol is the relative tolerance on the pressure root.
	Tol float64
	// MaxIter bounds the Newton iteration count before falling back.
	MaxIter int
	// RhoFloor and PFloor define the atmosphere state applied when the
	// recovered density or pressure drops below them (or when recovery
	// fails outright).
	RhoFloor float64
	PFloor   float64
	// VMax caps the recovered velocity magnitude (Lorentz-factor limiter);
	// production codes use 1 − 1e-10 or similar.
	VMax float64
}

// DefaultOptions returns the options used by the solver unless overridden.
func DefaultOptions() Options {
	return Options{
		Tol:      1e-12,
		MaxIter:  50,
		RhoFloor: 1e-13,
		PFloor:   1e-15,
		VMax:     1 - 1e-12,
	}
}

// Stats counts recovery events. All fields are updated atomically so one
// Solver may be shared across the strip-parallel RHS evaluation.
//
// Atomicity contract: each field is individually atomic, but the set of
// counters is not updated under a common lock, so a Snapshot taken while
// RecoverRange runs on other goroutines may observe intermediate mixes
// (e.g. a Calls increment whose NewtonIters increment has not landed
// yet). Counters are batched locally and flushed once per Recover or
// RecoverRange call — per-cell atomic traffic would dominate the hot loop
// — so a concurrent Snapshot may additionally lag by at most one
// in-flight range. Every individual count is exact once the concurrent
// recoveries have completed — there is a happens-before edge from each
// RecoverRange return to a subsequent Snapshot, so callers that quiesce
// first (as the solver does between stages) read exact totals. Snapshot
// never tears an individual counter.
type Stats struct {
	Calls       atomic.Int64 // total inversions attempted
	NewtonIters atomic.Int64 // total Newton iterations
	Bisections  atomic.Int64 // inversions that needed the bisection fallback
	FloorHits   atomic.Int64 // states clipped to the atmosphere floors
	Failures    atomic.Int64 // states reset wholesale to atmosphere
}

// statDelta accumulates recovery counters in plain integers; Stats.flush
// lands the batch with one atomic add per touched counter.
type statDelta struct {
	calls, iters, bisections, floorHits, failures int64
}

// flush adds the batched deltas to the shared counters.
func (s *Stats) flush(d *statDelta) {
	if d.calls != 0 {
		s.Calls.Add(d.calls)
	}
	if d.iters != 0 {
		s.NewtonIters.Add(d.iters)
	}
	if d.bisections != 0 {
		s.Bisections.Add(d.bisections)
	}
	if d.floorHits != 0 {
		s.FloorHits.Add(d.floorHits)
	}
	if d.failures != 0 {
		s.Failures.Add(d.failures)
	}
}

// Snapshot returns a plain-values copy of the counters.
func (s *Stats) Snapshot() (calls, iters, bisections, floorHits, failures int64) {
	return s.Calls.Load(), s.NewtonIters.Load(), s.Bisections.Load(),
		s.FloorHits.Load(), s.Failures.Load()
}

// Solver performs conservative→primitive inversions for one equation of
// state. It is safe for concurrent use.
type Solver struct {
	EOS  eos.EOS
	Opts Options
	Stat Stats
}

// NewSolver returns a Solver with default options.
func NewSolver(e eos.EOS) *Solver {
	return &Solver{EOS: e, Opts: DefaultOptions()}
}

// ErrUnphysical is wrapped by recovery errors for conserved states outside
// the physical domain (E+p ≤ |S| for every admissible p, negative D, …).
var ErrUnphysical = errors.New("c2p: unphysical conserved state")

// primsAt evaluates the algebraic primitive reconstruction at pressure p.
// It returns ok=false when p is inadmissible for this conserved state.
func primsAt(c state.Cons, p float64, vmax float64) (rho, vx, vy, vz, eps, v2 float64, ok bool) {
	e := c.Tau + c.D
	ep := e + p
	s2 := c.SSq()
	if ep <= 0 {
		return 0, 0, 0, 0, 0, 0, false
	}
	v2 = s2 / (ep * ep)
	if v2 >= vmax*vmax {
		return 0, 0, 0, 0, 0, 0, false
	}
	w := 1 / math.Sqrt(1-v2)
	rho = c.D / w
	h := ep / (c.D * w)
	eps = h - 1 - p/rho
	inv := 1 / ep
	vx, vy, vz = c.Sx*inv, c.Sy*inv, c.Sz*inv
	return rho, vx, vy, vz, eps, v2, rho > 0 && !math.IsNaN(eps)
}

// atmosphere returns the floor state.
func (s *Solver) atmosphere() state.Prim {
	return state.Prim{Rho: s.Opts.RhoFloor, P: s.Opts.PFloor}
}

// residual evaluates f(p) = p_EOS(ρ(p), ε(p)) − p and the monotone
// derivative approximation f'(p) ≈ v²c_s² − 1 for one conserved state.
// When gamma > 0 the EOS is a Γ-law gas and the Pressure/SoundSpeed2
// calls are devirtualised, mirroring eos.IdealGas operation for operation
// so the root — and hence the recovered state — is bitwise independent of
// the dispatch path.
type residual struct {
	c     state.Cons
	vmax  float64
	e     eos.EOS
	gamma float64 // adiabatic index when e is a Γ-law gas; 0 otherwise
}

func (r *residual) eval(p float64) (fv, df float64, ok bool) {
	rho, _, _, _, eps, v2, ok := primsAt(r.c, p, r.vmax)
	if !ok {
		return 0, 0, false
	}
	if gamma := r.gamma; gamma > 0 {
		pe := (gamma - 1) * rho * eps
		cs2 := 0.0
		if pe > 0 {
			h := 1 + gamma/(gamma-1)*pe/rho
			cs2 = gamma * pe / (rho * h)
		}
		return pe - p, v2*cs2 - 1, true
	}
	pe := r.e.Pressure(rho, eps)
	cs2 := 0.0
	if pe > 0 {
		cs2 = r.e.SoundSpeed2(rho, pe)
	}
	return pe - p, v2*cs2 - 1, true
}

// idealGamma returns the adiabatic index when the solver's EOS is a Γ-law
// gas, else 0 (the sentinel residual.eval branches on).
func (s *Solver) idealGamma() float64 {
	if g, ok := s.EOS.(eos.IdealGas); ok {
		return g.GammaAd
	}
	return 0
}

// Recover inverts the conserved state c. The guess is a pressure estimate
// (typically last step's pressure); pass 0 to let the solver choose. The
// returned primitive always satisfies the floors; err is non-nil only when
// the state was unrecoverable and has been reset to atmosphere.
func (s *Solver) Recover(c state.Cons, guess float64) (state.Prim, error) {
	var st statDelta
	p, err := s.recover(c, guess, s.idealGamma(), &st)
	s.Stat.flush(&st)
	return p, err
}

// recover is Recover with the stats batched into st and the Γ-law
// devirtualisation hoisted (gamma as returned by idealGamma).
func (s *Solver) recover(c state.Cons, guess, gamma float64, st *statDelta) (state.Prim, error) {
	st.calls++
	opts := &s.Opts

	// Immediately hopeless states: non-positive D or E.
	e := c.Tau + c.D
	if !(c.D > 0) || !(e > 0) || math.IsNaN(c.D) || math.IsNaN(e) {
		st.failures++
		return s.atmosphere(), fmt.Errorf("%w: D=%v E=%v", ErrUnphysical, c.D, e)
	}

	// Admissible pressure bracket. Causality demands E + p > |S|; the
	// outer Max already clamps the bound onto the pressure floor, so no
	// further floor check is needed (for admissible Γ-law states the
	// causality term is in fact always negative — see the regression test
	// TestCausalityBoundBracket).
	sAbs := math.Sqrt(c.SSq())
	pMin := math.Max(opts.PFloor, (sAbs-e)*(1+1e-10))

	p := guess
	if !(p > pMin) || math.IsNaN(p) {
		// Ideal-gas-flavoured initial estimate: p ≈ (Γ̂−1)(E − D) with Γ̂ = 5/3,
		// clipped into the bracket.
		p = math.Max(pMin*1.000001, (2.0/3.0)*(e-c.D))
		if !(p > 0) {
			p = pMin * 1.000001
		}
	}

	fr := residual{c: c, vmax: opts.VMax, e: s.EOS, gamma: gamma}

	// Newton iteration with the monotone derivative approximation.
	// Convergence requires both a small step and a small residual: the step
	// alone can shrink spuriously when the iterate is pinned against pMin.
	converged := false
	for it := 0; it < opts.MaxIter; it++ {
		fv, df, ok := fr.eval(p)
		st.iters++
		if !ok {
			break
		}
		if math.Abs(fv) <= opts.Tol*math.Max(p, opts.PFloor) {
			converged = true
			break
		}
		if df >= 0 { // should not happen for causal EOS; bail to bisection
			break
		}
		dp := -fv / df
		pNew := p + dp
		if pNew <= pMin {
			pNew = 0.5 * (p + pMin)
		}
		p = pNew
	}

	if !converged {
		// Bisection fallback. For Γ-law gases f is monotone decreasing
		// (one root), but steep hybrid/piecewise cold curves can make f
		// non-monotone: negative near pMin (clipped thermal part),
		// positive in a band, negative again above the physical root. The
		// fallback therefore (1) locates a point with f > 0, (2) expands
		// upward until f < 0 again, and (3) bisects that bracket, which
		// always contains the physical (largest) root.
		st.bisections++
		lo := pMin * (1 + 1e-14)

		// (1) A positive-residual point: try pMin, the last Newton
		// iterate and the ideal-gas estimate, then scan geometrically.
		pPos, havePos := 0.0, false
		for _, cand := range []float64{lo, p, (2.0 / 3.0) * (e - c.D)} {
			if cand < lo {
				continue
			}
			if fv, _, ok := fr.eval(cand); ok && fv > 0 {
				pPos, havePos = cand, true
				break
			}
		}
		if !havePos {
			for scan := lo * 2; scan < lo*1e30; scan *= 1.7 {
				if fv, _, ok := fr.eval(scan); ok && fv > 0 {
					pPos, havePos = scan, true
					break
				}
			}
		}

		// Distinguish why no positive residual can exist: when pMin is
		// just the pressure floor the state is genuinely cold and
		// clamping to the floor is correct; when pMin is the causality
		// bound |S|−E the state admits no pressure at all.
		causalityBound := (sAbs-e)*(1+1e-10) > opts.PFloor
		if !havePos {
			fLo, _, okLo := fr.eval(lo)
			if okLo && fLo <= 0 && !causalityBound {
				p = lo
			} else {
				st.failures++
				return s.atmosphere(), fmt.Errorf("%w: no pressure bracket (D=%.3e S=%.3e tau=%.3e)",
					ErrUnphysical, c.D, sAbs, c.Tau)
			}
		} else {
			// (2) Expand above pPos until the residual turns negative.
			lo = pPos
			hi := math.Max(2*pPos, 1.0)
			okBracket := false
			for k := 0; k < 200; k++ {
				if fv, _, ok := fr.eval(hi); !ok || fv < 0 {
					okBracket = true
					break
				}
				lo = hi // residual still positive: the root is above
				hi *= 4
				if math.IsInf(hi, 0) {
					break
				}
			}
			if !okBracket {
				st.failures++
				return s.atmosphere(), fmt.Errorf("%w: unbounded pressure residual (D=%.3e)",
					ErrUnphysical, c.D)
			}
			// (3) Bisect [lo, hi].
			for k := 0; k < 200; k++ {
				mid := 0.5 * (lo + hi)
				fv, _, ok := fr.eval(mid)
				if !ok || fv < 0 {
					hi = mid
				} else {
					lo = mid
				}
				if hi-lo <= opts.Tol*hi {
					break
				}
			}
			p = 0.5 * (lo + hi)
		}
	}

	rho, vx, vy, vz, _, v2, ok := primsAt(c, p, opts.VMax)
	if !ok {
		st.failures++
		return s.atmosphere(), fmt.Errorf("%w: inadmissible root p=%v", ErrUnphysical, p)
	}

	prim := state.Prim{Rho: rho, Vx: vx, Vy: vy, Vz: vz, P: p}

	// Velocity cap.
	if v2 > opts.VMax*opts.VMax {
		scale := opts.VMax / math.Sqrt(v2)
		prim.Vx *= scale
		prim.Vy *= scale
		prim.Vz *= scale
		st.floorHits++
	}
	// Floors.
	if prim.Rho < opts.RhoFloor {
		prim.Rho = opts.RhoFloor
		st.floorHits++
	}
	if prim.P < opts.PFloor {
		prim.P = opts.PFloor
		st.floorHits++
	}
	return prim, nil
}

// RecoverRange inverts cells [lo, hi) of cons into prim, using each cell's
// previous pressure in prim as the Newton guess. It returns the number of
// cells that had to be reset to atmosphere. Both Fields must have the same
// size; the call is safe to run concurrently on disjoint ranges.
func (s *Solver) RecoverRange(cons, prim *state.Fields, lo, hi int) int {
	return s.RecoverRangeEx(cons, prim, lo, hi, nil, true).Failures
}

// RangeResult reports the outcome of one RecoverRangeEx call.
type RangeResult struct {
	// Failures is the number of cells whose inversion failed.
	Failures int
	// FirstIdx is the flat index of the lowest failing cell, or -1.
	FirstIdx int
	// FirstCons is the conserved state of that cell as it was *before*
	// any atmosphere reset — the real failure, preserved for diagnostics.
	FirstCons state.Cons
}

// RecoverRangeEx is RecoverRange with two extra controls for the
// a posteriori fail-safe machinery:
//
//   - mask, when non-nil, gets mask[i] = 1 for every failing cell (cells
//     that recover are left untouched — callers own the clearing);
//   - reset = false leaves failing conserved cells untouched ("flagging
//     mode": the caller will repair them from pre-stage data), writing
//     only the atmosphere placeholder into prim; reset = true resyncs
//     them to the atmosphere, matching RecoverRange.
//
// The result carries the pre-reset conserved state of the first failing
// cell so validation errors can report what actually failed, not the
// atmosphere it was overwritten with.
func (s *Solver) RecoverRangeEx(cons, prim *state.Fields, lo, hi int, mask []uint8, reset bool) RangeResult {
	if cons.N != prim.N {
		panic("c2p: RecoverRange size mismatch")
	}
	if lo < 0 || hi > cons.N || lo > hi {
		panic(fmt.Sprintf("c2p: RecoverRange bad range [%d,%d) of %d", lo, hi, cons.N))
	}
	gamma := s.idealGamma()
	var st statDelta
	res := RangeResult{FirstIdx: -1}
	for i := lo; i < hi; i++ {
		c := cons.GetCons(i)
		guess := prim.Comp[state.IP][i]
		p, err := s.recover(c, guess, gamma, &st)
		if err != nil {
			if res.Failures == 0 {
				res.FirstIdx, res.FirstCons = i, c
			}
			res.Failures++
			if mask != nil {
				mask[i] = 1
			}
			if reset {
				// Resync the conserved state with the atmosphere so the next
				// step starts from a consistent pair.
				cons.SetCons(i, p.ToCons(s.EOS))
			}
		}
		prim.SetPrim(i, p)
	}
	s.Stat.flush(&st)
	return res
}
