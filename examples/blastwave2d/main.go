// Blastwave2d evolves the cylindrical relativistic blast wave on a 256²
// grid using WENO5 + HLLC + SSP-RK3 across all host cores, reports
// throughput and the shock radius, and writes a gnuplot-ready density
// heatmap to blast2d.dat (plot with: splot 'blast2d.dat' with pm3d).
//
// Run with:
//
//	go run ./examples/blastwave2d
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"rhsc"
)

func main() {
	const n = 256
	sim, err := rhsc.NewSim(rhsc.Options{
		Problem:    "blast2d",
		N:          n,
		Recon:      "weno5",
		Riemann:    "hllc",
		Integrator: "rk3",
		Threads:    runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := sim.RunTo(0.25); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Locate the shock radius along +x (max density gradient).
	bestX, bestG, prev := 0.0, 0.0, math.NaN()
	for x := 0.01; x < 0.99; x += 2.0 / n {
		rho := sim.At(x, 0).Rho
		if !math.IsNaN(prev) {
			if g := math.Abs(rho - prev); g > bestG {
				bestG, bestX = g, x
			}
		}
		prev = rho
	}
	// Radial symmetry check: same radius along the diagonal.
	d := bestX / math.Sqrt2
	rhoAxis := sim.At(bestX, 0).Rho
	rhoDiag := sim.At(d, d).Rho

	fmt.Printf("2-D cylindrical blast, %dx%d, t=%.2f, %d threads\n",
		n, n, sim.Time(), runtime.NumCPU())
	fmt.Printf("  wall time    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput   %.2f Mzups\n", rhsc.Mzups(sim.ZoneUpdates(), elapsed))
	fmt.Printf("  shock radius %.3f\n", bestX)
	fmt.Printf("  symmetry     rho(axis)=%.4g rho(diag)=%.4g\n", rhoAxis, rhoDiag)

	f, err := os.Create("blast2d.dat")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sim.WriteSlab(f); err != nil {
		log.Fatal(err)
	}
	img, err := os.Create("blast2d.png")
	if err != nil {
		log.Fatal(err)
	}
	defer img.Close()
	if err := sim.WritePNG(img, true, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("slab written to blast2d.dat, density image to blast2d.png")
}
