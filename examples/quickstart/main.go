// Quickstart: run the relativistic Sod shock tube (Martí–Müller Problem 1)
// at N = 400 with the default method (PLM-MC + HLLC + SSP-RK2), compare
// against the exact Riemann solution, and write the profile to
// sod_profile.csv.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"rhsc"
)

func main() {
	const n = 400
	sim, err := rhsc.NewSim(rhsc.Options{Problem: "sod", N: n, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Exact solution for the same initial data at the final time.
	tEnd := sim.Problem.TEnd
	sample, err := rhsc.ExactSod(10, 0, 13.33, 1, 0, 1e-6, 5.0/3.0, 0.5, tEnd)
	if err != nil {
		log.Fatal(err)
	}

	l1 := 0.0
	dx := 1.0 / n
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) * dx
		l1 += math.Abs(sim.At(x, 0).Rho-sample(x).Rho) * dx
	}

	fmt.Printf("relativistic Sod tube, N=%d, t=%.2f\n", n, tEnd)
	fmt.Printf("  wall time        %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput       %.2f Mzups\n", rhsc.Mzups(sim.ZoneUpdates(), elapsed))
	fmt.Printf("  L1(rho) vs exact %.4e\n", l1)
	fmt.Printf("  plateau check    v(0.62) = %.4f (exact %.4f)\n",
		sim.At(0.62, 0).Vx, sample(0.62).Vx)

	f, err := os.Create("sod_profile.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sim.WriteProfile(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("profile written to sod_profile.csv")
}
