// Amrshock contrasts adaptive mesh refinement against a uniform fine grid
// on the relativistic blast wave (Martí–Müller Problem 2): same effective
// resolution, a fraction of the zone updates, comparable error against
// the exact solution.
//
// Run with:
//
//	go run ./examples/amrshock
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"rhsc"
)

func main() {
	const (
		rootBlocks = 8
		blockN     = 16
		maxLevel   = 2
		tEnd       = 0.25
	)
	nEff := rootBlocks * blockN * (1 << maxLevel) // 512 effective cells

	exactAt, err := rhsc.ExactSod(1, 0, 1000, 1, 0, 0.01, 5.0/3.0, 0.5, tEnd)
	if err != nil {
		log.Fatal(err)
	}
	l1 := func(at func(x float64) float64) float64 {
		s, dx := 0.0, 1.0/float64(nEff)
		for i := 0; i < nEff; i++ {
			x := (float64(i) + 0.5) * dx
			s += math.Abs(at(x)-exactAt(x).Rho) * dx
		}
		return s
	}

	// Adaptive run.
	amrStart := time.Now()
	a, err := rhsc.NewAMRSim(rhsc.Options{Problem: "blast"},
		rhsc.AMROptions{RootBlocks: rootBlocks, BlockN: blockN, MaxLevel: maxLevel})
	if err != nil {
		log.Fatal(err)
	}
	if err := a.RunTo(tEnd); err != nil {
		log.Fatal(err)
	}
	amrTime := time.Since(amrStart)
	leaves, zones, level, amrUpdates := a.Stats()

	// Uniform fine run at the same effective resolution.
	uniStart := time.Now()
	u, err := rhsc.NewSim(rhsc.Options{Problem: "blast", N: nEff})
	if err != nil {
		log.Fatal(err)
	}
	if err := u.RunTo(tEnd); err != nil {
		log.Fatal(err)
	}
	uniTime := time.Since(uniStart)

	amrL1 := l1(func(x float64) float64 { return a.At(x, 0).Rho })
	uniL1 := l1(func(x float64) float64 { return u.At(x, 0).Rho })

	fmt.Printf("relativistic blast wave, effective N=%d, t=%.2f\n\n", nEff, tEnd)
	fmt.Printf("  %-14s %12s %12s %10s %12s\n", "run", "zone-updates", "wall time", "L1(rho)", "active zones")
	fmt.Printf("  %-14s %12d %12v %10.4f %12d\n",
		"uniform", u.ZoneUpdates(), uniTime.Round(time.Millisecond), uniL1, nEff)
	fmt.Printf("  %-14s %12d %12v %10.4f %12d\n",
		fmt.Sprintf("amr L%d", level), amrUpdates, amrTime.Round(time.Millisecond), amrL1, zones)
	fmt.Printf("\n  AMR: %d leaves, %.1fx fewer zone updates, error ratio %.2f\n",
		leaves,
		float64(u.ZoneUpdates())/float64(amrUpdates),
		amrL1/uniL1)
}
