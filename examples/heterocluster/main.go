// Heterocluster demonstrates the two scalability axes of the framework on
// one workload (the 2-D blast wave):
//
//  1. heterogeneous execution — CPU-only vs GPU-only vs CPU+GPU with
//     static and dynamic strip scheduling, in modelled (virtual) time; and
//  2. distributed execution — strong scaling over ranks with synchronous
//     vs overlapped (async) halo exchange on an InfiniBand-class virtual
//     network.
//
// Run with:
//
//	go run ./examples/heterocluster
package main

import (
	"fmt"
	"log"

	"rhsc"
)

func heteroDemo() {
	const n, steps = 192, 4
	type setup struct {
		name   string
		policy rhsc.SchedulePolicy
		specs  []rhsc.DeviceSpec
	}
	setups := []setup{
		{"cpu-8c", rhsc.StaticSchedule, []rhsc.DeviceSpec{rhsc.HostCPU(8)}},
		{"gpu", rhsc.StaticSchedule, []rhsc.DeviceSpec{rhsc.GPU()}},
		{"cpu+gpu static", rhsc.StaticSchedule, []rhsc.DeviceSpec{rhsc.HostCPU(8), rhsc.GPU()}},
		{"cpu+gpu dynamic", rhsc.DynamicSchedule, []rhsc.DeviceSpec{rhsc.HostCPU(8), rhsc.GPU()}},
		// A staged (PCIe-bound) GPU's effective speed is far below its
		// nominal one: the static split misjudges it, the dynamic queue
		// adapts.
		{"cpu+staged static", rhsc.StaticSchedule, []rhsc.DeviceSpec{rhsc.HostCPU(8), rhsc.StagedGPU()}},
		{"cpu+staged dynamic", rhsc.DynamicSchedule, []rhsc.DeviceSpec{rhsc.HostCPU(8), rhsc.StagedGPU()}},
	}
	fmt.Println("heterogeneous execution, 192^2 blast, 4 steps (virtual time):")
	var base float64
	for _, su := range setups {
		h, err := rhsc.NewHeteroSim(rhsc.Options{Problem: "blast2d", N: n}, su.policy, su.specs...)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := h.Step(); err != nil {
				log.Fatal(err)
			}
		}
		vt := h.VirtualSeconds()
		if base == 0 {
			base = vt
		}
		fmt.Printf("  %-19s %8.3f ms   speedup %.2fx\n", su.name, vt*1e3, base/vt)
	}
}

func clusterDemo() {
	const n, steps = 2048, 4
	fmt.Println("\ndistributed strong scaling, N=2048 Sod, 4 steps, IB network (virtual time):")
	fmt.Printf("  %5s  %12s  %12s  %8s\n", "ranks", "sync", "async", "async-eff")
	var t1 float64
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		syncRes, err := rhsc.RunCluster(rhsc.Options{Problem: "sod", N: n},
			rhsc.ClusterOptions{Ranks: ranks, Steps: steps, Network: "ib"})
		if err != nil {
			log.Fatal(err)
		}
		asyncRes, err := rhsc.RunCluster(rhsc.Options{Problem: "sod", N: n},
			rhsc.ClusterOptions{Ranks: ranks, Steps: steps, Network: "ib", Async: true})
		if err != nil {
			log.Fatal(err)
		}
		if ranks == 1 {
			t1 = asyncRes.VirtualTime
		}
		eff := 100 * t1 / (float64(ranks) * asyncRes.VirtualTime)
		fmt.Printf("  %5d  %10.3f ms %10.3f ms  %6.1f%%\n",
			ranks, syncRes.VirtualTime*1e3, asyncRes.VirtualTime*1e3, eff)
	}
}

func main() {
	heteroDemo()
	clusterDemo()
}
