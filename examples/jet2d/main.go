// Jet2d injects a pressure-matched relativistic jet (Lorentz factor ≈ 7,
// density ratio η = 0.1) into a dense ambient medium and follows the bow
// shock, cocoon and working surface — the astrophysics workload
// (AGN/microquasar jets) that motivates relativistic HRSC solvers.
//
// The head position is compared against the 1-D momentum-balance estimate
// v_head = v_b / (1 + sqrt(ρ_a/(ρ_b W_b²))), and the final state is
// written as a ParaView-readable VTK file.
//
// Run with:
//
//	go run ./examples/jet2d
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"rhsc"
)

func main() {
	const n = 192
	sim, err := rhsc.NewSim(rhsc.Options{
		Problem: "jet2d",
		N:       n,
		Threads: runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Momentum-balance head speed for the catalogued jet parameters.
	const (
		vb  = 0.99
		eta = 0.1
	)
	wb2 := 1 / (1 - vb*vb)
	vHead := vb / (1 + math.Sqrt(1/(eta*wb2)))

	headAt := func() float64 {
		head := 0.0
		for i := 0; i < n; i++ {
			x := 2 * (float64(i) + 0.5) / float64(n)
			if sim.At(x, 0).Vx > 0.3 {
				head = x
			}
		}
		return head
	}

	fmt.Printf("relativistic jet, %dx%d, beam W=%.2f, predicted head speed %.3f c\n",
		n, n/2, 1/math.Sqrt(1-vb*vb), vHead)
	fmt.Printf("%8s  %10s  %10s\n", "t", "head", "predicted")
	start := time.Now()
	for _, tOut := range []float64{0.25, 0.5, 0.75, 1.0} {
		if err := sim.RunTo(tOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f  %10.3f  %10.3f\n", sim.Time(), headAt(), vHead*tOut)
	}
	fmt.Printf("wall time %v, %.2f Mzups\n",
		time.Since(start).Round(time.Millisecond),
		rhsc.Mzups(sim.ZoneUpdates(), time.Since(start)))

	f, err := os.Create("jet2d.vtk")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sim.WriteVTK(f, "relativistic jet"); err != nil {
		log.Fatal(err)
	}
	img, err := os.Create("jet2d.png")
	if err != nil {
		log.Fatal(err)
	}
	defer img.Close()
	if err := sim.WritePNG(img, true, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("final state written to jet2d.vtk (ParaView) and jet2d.png")
}
