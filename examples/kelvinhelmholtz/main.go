// Kelvinhelmholtz evolves the relativistic Kelvin–Helmholtz shear
// instability and prints the growth of the transverse kinetic-energy
// proxy max|v_y|(t) — the standard diagnostic whose near-exponential rise
// and saturation signal the instability is captured.
//
// Run with:
//
//	go run ./examples/kelvinhelmholtz
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"

	"rhsc"
)

func main() {
	const n = 128
	sim, err := rhsc.NewSim(rhsc.Options{
		Problem: "kh2d",
		N:       n,
		Threads: runtime.NumCPU(),
	})
	if err != nil {
		log.Fatal(err)
	}

	maxVy := func() float64 {
		m := 0.0
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x := -0.5 + (float64(i)+0.5)/n
				y := -0.5 + (float64(j)+0.5)/n
				if v := math.Abs(sim.At(x, y).Vy); v > m {
					m = v
				}
			}
		}
		return m
	}

	fmt.Printf("relativistic Kelvin–Helmholtz, %dx%d\n", n, n)
	fmt.Printf("%8s  %12s\n", "t", "max|vy|")
	v0 := maxVy()
	fmt.Printf("%8.2f  %12.5e\n", sim.Time(), v0)
	for _, tOut := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
		if err := sim.RunTo(tOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.2f  %12.5e\n", sim.Time(), maxVy())
	}
	vEnd := maxVy()
	fmt.Printf("\namplification: %.1fx over the run (instability %s)\n",
		vEnd/v0, map[bool]string{true: "captured", false: "NOT captured"}[vEnd > 5*v0])
}
