// Relativisticeffects contrasts the relativistic HRSC solver against the
// classical (Newtonian) Euler baseline on the same initial data.
//
// In the mildly relativistic Sod tube the two agree qualitatively; in the
// blast-wave regime (p/ρ = 1000) the Newtonian shock races ahead at ~20 c
// while the relativistic shock stays causal at 0.986 c — the physical
// reason the paper's solver exists.
//
// Run with:
//
//	go run ./examples/relativisticeffects
package main

import (
	"fmt"
	"log"
	"math"

	"rhsc"
)

// shockOf locates the strongest density gradient along y = 0.
func shockOf(at func(x float64) float64, n int) float64 {
	best, bestG, prev := 0.0, 0.0, math.NaN()
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) / float64(n)
		v := at(x)
		if !math.IsNaN(prev) {
			if g := math.Abs(v - prev); g > bestG {
				bestG, best = g, x
			}
		}
		prev = v
	}
	return best
}

// compare measures each solver's shock speed over a window long enough
// for the shock to cross many cells (the windows differ because the
// Newtonian blast shock moves ~20x faster and would exit the domain).
func compare(problem string, tRel, tNewt float64) {
	const n = 400
	rel, err := rhsc.NewSim(rhsc.Options{Problem: problem, N: n})
	if err != nil {
		log.Fatal(err)
	}
	// Two-time measurement cancels the constant offset between the
	// detected gradient maximum and the true front.
	if err := rel.RunTo(tRel / 2); err != nil {
		log.Fatal(err)
	}
	xr1 := shockOf(func(x float64) float64 { return rel.At(x, 0).Rho }, n)
	if err := rel.RunTo(tRel); err != nil {
		log.Fatal(err)
	}
	xr2 := shockOf(func(x float64) float64 { return rel.At(x, 0).Rho }, n)

	newt, err := rhsc.NewNewtonSim(rhsc.Options{Problem: problem, N: n})
	if err != nil {
		log.Fatal(err)
	}
	if err := newt.RunTo(tNewt / 2); err != nil {
		log.Fatal(err)
	}
	xn1 := shockOf(func(x float64) float64 { return newt.At(x, 0).Rho }, n)
	if err := newt.RunTo(tNewt); err != nil {
		log.Fatal(err)
	}
	xn2 := shockOf(func(x float64) float64 { return newt.At(x, 0).Rho }, n)

	vr := (xr2 - xr1) / (tRel / 2)
	vn := (xn2 - xn1) / (tNewt / 2)
	fmt.Printf("%-6s shock speed:  relativistic %.3f c   newtonian %.3f c\n",
		problem, vr, vn)
	if vn > 1 {
		fmt.Printf("        -> the baseline shock is superluminal; relativity is not optional here\n")
	}
}

func main() {
	fmt.Println("relativistic vs Newtonian shock dynamics (N=400):")
	compare("sod", 0.35, 0.15)   // strong tube: baseline already superluminal
	compare("blast", 0.35, 0.02) // p/rho = 1000: Newtonian physics breaks down badly
}
