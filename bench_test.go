package rhsc

// One testing.B benchmark per experiment in EXPERIMENTS.md (E1–E10), plus
// micro-benchmarks of the hot kernels (conservative-to-primitive
// inversion, reconstruction, Riemann fluxes). Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks measure a fixed, small unit of each experiment's work
// so they are stable under -benchtime; the full sweeps that regenerate
// the tables live in cmd/benchsuite.

import (
	"math/rand"
	"testing"

	"rhsc/internal/amr"
	"rhsc/internal/c2p"
	"rhsc/internal/cluster"
	"rhsc/internal/core"
	"rhsc/internal/eos"
	"rhsc/internal/hetero"
	"rhsc/internal/par"
	"rhsc/internal/recon"
	"rhsc/internal/riemann"
	"rhsc/internal/state"
	"rhsc/internal/testprob"
)

// newSolver builds a ready-to-step solver for a problem.
func newSolver(b *testing.B, p *testprob.Problem, n int, cfg core.Config) *core.Solver {
	b.Helper()
	g := p.NewGrid(n, cfg.Recon.Ghost())
	s, err := core.New(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.InitFromPrim(p.Init)
	return s
}

// BenchmarkE1_ShockTubeStep measures one full RK2 step of the Sod tube at
// N = 400 — the unit of work behind Table 1.
func BenchmarkE1_ShockTubeStep(b *testing.B) {
	s := newSolver(b, testprob.Sod, 400, core.DefaultConfig())
	dt := s.MaxDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(400*2), "zones/op")
}

// BenchmarkE3_SmoothWaveWENO5 measures the high-order path of Table 2.
func BenchmarkE3_SmoothWaveWENO5(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Recon = recon.WENO5{}
	cfg.Integrator = core.RK3
	s := newSolver(b, testprob.SmoothWave, 256, cfg)
	dt := s.MaxDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_RHS2D measures one RHS evaluation of the 2-D blast at 128²,
// serial and pooled — the kernel behind Table 3.
func BenchmarkE4_RHS2D(b *testing.B) {
	for _, threads := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "pool4"}[threads]
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			if threads > 1 {
				cfg.Pool = par.NewPool(threads)
			}
			s := newSolver(b, testprob.Blast2D, 128, cfg)
			s.RecoverPrimitives()
			rhs := state.NewFields(s.G.NCells())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ComputeRHS(rhs)
			}
			b.ReportMetric(128*128, "zones/op")
		})
	}
}

// BenchmarkE5_StrongScaling runs a fixed distributed step set at 4 ranks
// (the measurement unit of Fig 4).
func BenchmarkE5_StrongScaling(b *testing.B) {
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(testprob.Sod, 1024, cfg, cluster.Options{
			Ranks: 4, Mode: cluster.Async, Net: cluster.Infiniband(), Steps: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_WeakScaling runs the weak-scaling unit of Fig 5.
func BenchmarkE6_WeakScaling(b *testing.B) {
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(testprob.Sod, 512*4, cfg, cluster.Options{
			Ranks: 4, Mode: cluster.Sync, Net: cluster.Infiniband(), Steps: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_DeviceStep measures a device-scheduled step of the 2-D
// blast (Table 4's unit).
func BenchmarkE7_DeviceStep(b *testing.B) {
	s := newSolver(b, testprob.Blast2D, 64, core.DefaultConfig())
	ex := hetero.MustExecutor(hetero.Static, hetero.MustDevice(hetero.SpecK20GPU()))
	ex.Attach(s)
	dt := s.MaxDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_HeteroDynamicStep measures the CPU+GPU dynamic-queue step
// (Fig 6's unit).
func BenchmarkE8_HeteroDynamicStep(b *testing.B) {
	s := newSolver(b, testprob.Blast2D, 64, core.DefaultConfig())
	ex := hetero.MustExecutor(hetero.Dynamic,
		hetero.MustDevice(hetero.SpecHostCPU(4)),
		hetero.MustDevice(hetero.SpecK20GPU()))
	ex.Attach(s)
	dt := s.MaxDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_AMRStep measures one adaptive step of the 1-D blast tree
// (Fig 7's unit).
func BenchmarkE9_AMRStep(b *testing.B) {
	ac := amr.DefaultConfig(core.DefaultConfig())
	ac.MaxLevel = 2
	tr, err := amr.NewTree(testprob.Blast, 8, ac)
	if err != nil {
		b.Fatal(err)
	}
	dt := tr.MaxDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_Ablation measures one RHS per reconstruction × Riemann
// combination on a 1-D grid (Table 5's unit).
func BenchmarkE10_Ablation(b *testing.B) {
	recons := map[string]recon.Scheme{
		"pcm":   recon.PCM{},
		"plm":   recon.PLM{Lim: recon.MonotonizedCentral},
		"ppm":   recon.PPM{},
		"weno5": recon.WENO5{},
	}
	solvers := map[string]riemann.Solver{
		"llf": riemann.LLF{}, "hll": riemann.HLL{}, "hllc": riemann.HLLC{},
	}
	for rn, rc := range recons {
		for sn, rs := range solvers {
			b.Run(rn+"_"+sn, func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.Recon = rc
				cfg.Riemann = rs
				s := newSolver(b, testprob.Sod, 4096, cfg)
				s.RecoverPrimitives()
				rhs := state.NewFields(s.G.NCells())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.ComputeRHS(rhs)
				}
				b.ReportMetric(4096, "zones/op")
			})
		}
	}
}

// BenchmarkFusedKernel contrasts the generic (interface-dispatched) sweep
// with the specialised PLM+HLLC+ideal-gas kernel — the single-kernel
// analogue of the paper's per-device code specialisation.
func BenchmarkFusedKernel(b *testing.B) {
	for _, fused := range []bool{false, true} {
		name := map[bool]string{false: "generic", true: "fused"}[fused]
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Fused = fused
			s := newSolver(b, testprob.Blast2D, 128, cfg)
			s.RecoverPrimitives()
			rhs := state.NewFields(s.G.NCells())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ComputeRHS(rhs)
			}
			b.ReportMetric(128*128, "zones/op")
		})
	}
}

// --- kernel micro-benchmarks ---------------------------------------------

// BenchmarkC2PRecover measures the conservative→primitive inversion.
func BenchmarkC2PRecover(b *testing.B) {
	g := eos.NewIdealGas(5.0 / 3.0)
	s := c2p.NewSolver(g)
	rng := rand.New(rand.NewSource(1))
	const n = 1024
	cs := make([]state.Cons, n)
	for i := range cs {
		v := 0.95 * rng.Float64()
		p := state.Prim{Rho: 1 + rng.Float64(), Vx: v, P: 0.1 + rng.Float64()}
		cs[i] = p.ToCons(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cs[i%n]
		if _, err := s.Recover(c, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconRow measures one row reconstruction per scheme.
func BenchmarkReconRow(b *testing.B) {
	u := make([]float64, 1024)
	for i := range u {
		u[i] = float64(i % 17)
	}
	uL := make([]float64, len(u)+1)
	uR := make([]float64, len(u)+1)
	for _, sch := range recon.All() {
		b.Run(sch.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sch.Reconstruct(u, uL, uR)
			}
			b.ReportMetric(float64(len(u)), "zones/op")
		})
	}
}

// BenchmarkRiemannFlux measures a single face flux per solver.
func BenchmarkRiemannFlux(b *testing.B) {
	g := eos.NewIdealGas(5.0 / 3.0)
	pl := state.Prim{Rho: 10, Vx: 0.1, P: 13.33}
	pr := state.Prim{Rho: 1, Vx: -0.2, P: 0.1}
	for _, s := range riemann.All() {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Flux(g, pl, pr, state.X)
			}
		})
	}
}

// BenchmarkHaloExchange measures the distributed ghost-fill round trip.
func BenchmarkHaloExchange(b *testing.B) {
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(testprob.Sod, 256, cfg, cluster.Options{
			Ranks: 2, Steps: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
